"""Tests for the async serving front-end (micro-batching, protocol, parity).

The serving contract pinned here is the acceptance criterion of the serving
layer: for a fixed request set, micro-batched results must be bit-identical
to standalone per-request :class:`EstimaPredictor` runs at the exact target.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import EstimaConfig, EstimaPredictor, TimeExtrapolation
from repro.engine.server import PredictionServer, RequestError, parse_request, serve_unix

TARGETS = (24, 36, 48)


@pytest.fixture(scope="module")
def measured(intruder_opteron_sweep):
    return intruder_opteron_sweep.restrict_to(12)


@pytest.fixture(scope="module")
def requests_payloads(measured):
    """A fixed request set: three targets plus one baseline, inline measurements."""
    payloads = [
        {"id": f"t{target}", "target_cores": target, "measurements": measured.to_dict()}
        for target in TARGETS
    ]
    payloads.append(
        {
            "id": "baseline",
            "target_cores": 48,
            "baseline": True,
            "measurements": measured.to_dict(),
        }
    )
    return payloads


def _run(coro):
    return asyncio.run(coro)


class TestParseRequest:
    def test_inline_measurements(self, measured):
        request = parse_request(
            {"target_cores": 24, "measurements": measured.to_dict()}, EstimaConfig()
        )
        assert request.target_cores == 24
        np.testing.assert_array_equal(request.measurements.cores, measured.cores)

    def test_config_overrides(self, measured):
        request = parse_request(
            {
                "target_cores": 24,
                "measurements": measured.to_dict(),
                "config": {"checkpoints": 4, "use_software_stalls": False},
            },
            EstimaConfig(),
        )
        assert request.config.checkpoints == 4
        assert not request.config.use_software_stalls

    def test_engine_knobs_are_not_overridable(self, measured):
        with pytest.raises(RequestError, match="unsupported config overrides"):
            parse_request(
                {
                    "target_cores": 24,
                    "measurements": measured.to_dict(),
                    "config": {"executor": "parallel"},
                },
                EstimaConfig(),
            )

    def test_missing_target_rejected(self, measured):
        with pytest.raises(RequestError, match="target_cores"):
            parse_request({"measurements": measured.to_dict()}, EstimaConfig())

    def test_needs_measurements_or_workload(self):
        with pytest.raises(RequestError, match="measurements"):
            parse_request({"target_cores": 24}, EstimaConfig())

    def test_unknown_workload_rejected(self):
        with pytest.raises(RequestError):
            parse_request(
                {"target_cores": 24, "workload": "doom", "machine": "xeon20"},
                EstimaConfig(),
            )


class TestMicroBatchedParity:
    def test_batched_results_bit_identical_to_per_request_predictor(
        self, measured, requests_payloads
    ):
        """Acceptance: serve micro-batching never changes a single bit."""
        server = PredictionServer(EstimaConfig(), batch_window_ms=50.0, max_batch=16)

        async def run():
            responses = await asyncio.gather(
                *[server.submit(p) for p in requests_payloads]
            )
            stats = server.stats()
            await server.stop()
            return responses, stats

        responses, stats = _run(run())
        assert all(r["ok"] for r in responses)
        # All five concurrent submissions coalesced into one predict_batch.
        assert stats["server"]["batches"] == 1
        assert stats["server"]["max_batch_size"] == len(requests_payloads)

        by_id = {r["id"]: r["result"] for r in responses}
        for target in TARGETS:
            direct = EstimaPredictor(EstimaConfig()).predict(measured, target_cores=target)
            served = by_id[f"t{target}"]
            assert served["target_cores"] == target
            assert served["predicted_times_s"] == [float(t) for t in direct.predicted_times]
            assert served["stalls_per_core"] == [float(s) for s in direct.stalls_per_core]
            assert served["scaling_factor"]["kernel"] == direct.scaling_factor.kernel_name
        baseline = TimeExtrapolation(EstimaConfig()).predict(measured, target_cores=48)
        assert by_id["baseline"]["predicted_times_s"] == [
            float(t) for t in baseline.predicted_times
        ]
        assert by_id["baseline"]["kernel"] == baseline.extrapolation.kernel_name

    def test_duplicate_requests_dedup_across_clients(self, measured):
        server = PredictionServer(EstimaConfig(), batch_window_ms=50.0)
        payload = {"target_cores": 24, "measurements": measured.to_dict()}

        async def run():
            responses = await asyncio.gather(
                *[server.submit(dict(payload, id=i)) for i in range(4)]
            )
            caches = server.service.cache_stats()["prediction"]
            await server.stop()
            return responses, caches

        responses, caches = _run(run())
        assert all(r["ok"] for r in responses)
        assert caches["misses"] + caches["disk_misses"] <= 2  # one compute, three dedup hits
        assert caches["hits"] == 3

    def test_bad_request_gets_error_response_not_exception(self):
        server = PredictionServer(EstimaConfig())

        async def run():
            response = await server.submit({"id": 9, "target_cores": 24})
            await server.stop()
            return response

        response = _run(run())
        assert response == {
            "id": 9,
            "ok": False,
            "error": "request needs either 'measurements' or both 'workload' and 'machine'",
            "error_kind": "request",
        }

    def test_pipeline_error_is_reported_per_request(self, measured):
        # target below the measured maximum makes the predictor raise.
        server = PredictionServer(EstimaConfig())
        payload = {
            "id": 1,
            "target_cores": 2,
            "measurements": measured.to_dict(),
        }

        async def run():
            response = await server.submit(payload)
            await server.stop()
            return response

        response = _run(run())
        assert not response["ok"]
        assert "prediction failed" in response["error"]
        assert server.metrics.errors == 1

    def test_backpressure_queue_is_bounded(self, measured):
        server = PredictionServer(EstimaConfig(), queue_limit=2, batch_window_ms=0.0)

        async def run():
            await server.start()
            assert server._queue.maxsize == 2
            await server.stop()

        _run(run())


class TestUnixSocketTransport:
    def test_ndjson_round_trip_over_socket(self, tmp_path, measured):
        socket_path = str(tmp_path / "estima.sock")
        server = PredictionServer(EstimaConfig(), batch_window_ms=20.0)
        payloads = [
            {"id": i, "target_cores": t, "measurements": measured.to_dict()}
            for i, t in enumerate((24, 48))
        ]

        async def client():
            reader, writer = await asyncio.open_unix_connection(socket_path)
            for payload in payloads:
                writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            writer.write_eof()
            lines = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                lines.append(json.loads(line))
            writer.close()
            await writer.wait_closed()
            return lines

        async def run():
            serve_task = asyncio.get_running_loop().create_task(
                serve_unix(server, socket_path)
            )
            await asyncio.sleep(0.1)  # let the socket come up
            try:
                responses = await asyncio.wait_for(client(), timeout=120)
            finally:
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                await server.stop()
            return responses

        responses = _run(run())
        assert {r["id"] for r in responses} == {0, 1}
        assert all(r["ok"] for r in responses)
        direct = EstimaPredictor(EstimaConfig()).predict(measured, target_cores=24)
        served = next(r for r in responses if r["id"] == 0)
        assert served["result"]["predicted_times_s"] == [
            float(t) for t in direct.predicted_times
        ]

    def test_stale_socket_file_is_replaced_on_start(self, tmp_path):
        """A socket left behind by a killed server must not block restarts."""
        import socket as socket_module

        socket_path = str(tmp_path / "estima.sock")
        stale = socket_module.socket(socket_module.AF_UNIX)
        stale.bind(socket_path)
        stale.close()  # closing does not unlink: this is the stale-file case

        server = PredictionServer(EstimaConfig())

        async def run():
            serve_task = asyncio.get_running_loop().create_task(
                serve_unix(server, socket_path)
            )
            await asyncio.sleep(0.1)
            try:
                reader, writer = await asyncio.open_unix_connection(socket_path)
                writer.close()
                await writer.wait_closed()
            finally:
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                await server.stop()

        _run(run())  # binding over the stale socket must not raise

    def test_malformed_json_line_gets_error_response(self, tmp_path):
        socket_path = str(tmp_path / "estima.sock")
        server = PredictionServer(EstimaConfig())

        async def run():
            serve_task = asyncio.get_running_loop().create_task(
                serve_unix(server, socket_path)
            )
            await asyncio.sleep(0.1)
            try:
                reader, writer = await asyncio.open_unix_connection(socket_path)
                writer.write(b"this is not json\n")
                await writer.drain()
                writer.write_eof()
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                writer.close()
                await writer.wait_closed()
            finally:
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                await server.stop()
            return json.loads(line)

        response = _run(run())
        assert not response["ok"]
        assert "bad JSON" in response["error"]
