"""Tests for multi-process TCP serving and streamed campaigns.

Three contracts of the serving subsystem are pinned here:

* **determinism** — campaign rows streamed over the serve protocol are
  bit-identical (same JSON payloads, same order) to batch ``estima campaign
  --json`` output, across serial/threads/parallel executors;
* **concurrency** — many concurrent TCP clients issuing mixed
  predict/campaign ops against a 2-worker pool observe no dropped,
  duplicated or reordered responses per connection, and the pool's merged
  per-worker counters add up to the traffic actually sent;
* **supervision** — a crashed worker is detected and replaced, and the pool
  keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.core import EstimaConfig, EstimaPredictor
from repro.engine.pool import WorkerPool, parse_serve_workers, parse_tcp_address
from repro.engine.server import PredictionServer, serve_tcp

CAMPAIGN_CORE_COUNTS = "1,2,3,4,6,8,10,12,16,20"
CAMPAIGN_WORKLOADS = ["genome", "blackscholes"]
CAMPAIGN_TARGETS = {"half": 16, "full": 20}


@pytest.fixture(scope="module")
def measured(xeon20_simulator):
    from repro.workloads import get_workload

    sweep = xeon20_simulator.sweep(
        get_workload("genome"), core_counts=[1, 2, 3, 4, 6, 8, 10]
    )
    return sweep.restrict_to(10)


def _campaign_request(request_id, executor=None, workloads=None):
    payload = {
        "id": request_id,
        "op": "campaign",
        "machine": "xeon20",
        "measure_cores": 10,
        "targets": CAMPAIGN_TARGETS,
        "workloads": workloads or CAMPAIGN_WORKLOADS,
        "core_counts": [int(c) for c in CAMPAIGN_CORE_COUNTS.split(",")],
    }
    if executor is not None:
        payload["executor"] = executor
    return payload


def _client_roundtrip(address, lines: list[str]) -> list[dict]:
    """Send NDJSON lines over one TCP connection; return all response docs."""
    sock = socket.create_connection(address, timeout=600)
    try:
        stream = sock.makefile("rwb")
        for line in lines:
            stream.write(line.encode() + b"\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)
        return [json.loads(line) for line in stream]
    finally:
        sock.close()


class TestParseHelpers:
    def test_tcp_address_host_port(self):
        assert parse_tcp_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_tcp_address("0.0.0.0:0") == ("0.0.0.0", 0)

    def test_tcp_address_ipv6_brackets(self):
        assert parse_tcp_address("[::1]:9000") == ("::1", 9000)

    def test_tcp_address_rejects_malformed(self):
        for bad in ("nonsense", "8000", ":8000", "host:", "host:abc", "host:-1", "host:65536", "[]:1"):
            with pytest.raises(ValueError):
                parse_tcp_address(bad)

    def test_serve_workers_parses_and_rejects(self):
        assert parse_serve_workers("4") == 4
        assert parse_serve_workers(0) == 0
        with pytest.raises(ValueError, match="ESTIMA_SERVE_WORKERS"):
            parse_serve_workers("many", source="ESTIMA_SERVE_WORKERS")
        with pytest.raises(ValueError):
            parse_serve_workers(-2)


class _TcpServer:
    """In-process (single worker) asyncio TCP server driven from a thread.

    Runs the event loop in a background thread so synchronous socket clients
    (like the ones tests and real deployments use) can talk to it.
    """

    def __init__(self, server: PredictionServer) -> None:
        self.server = server
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            task = self._loop.create_task(
                serve_tcp(
                    self.server,
                    "127.0.0.1",
                    0,
                    on_listening=lambda addr: (
                        setattr(self, "address", addr),
                        self._ready.set(),
                    ),
                )
            )
            await self._stop.wait()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            await self.server.stop()

        asyncio.run(body())

    def __enter__(self) -> "_TcpServer":
        self._thread.start()
        assert self._ready.wait(timeout=30), "TCP server did not come up"
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


class TestTcpTransport:
    def test_round_trip_and_request_order(self, measured):
        """Predict responses come back ok, bit-identical, and in request order."""
        payloads = [
            {"id": f"r{i}", "target_cores": target, "measurements": measured.to_dict()}
            for i, target in enumerate((20, 16, 20))
        ]
        with _TcpServer(PredictionServer(EstimaConfig(), batch_window_ms=20.0)) as tcp:
            responses = _client_roundtrip(tcp.address, [json.dumps(p) for p in payloads])
        assert [r["id"] for r in responses] == ["r0", "r1", "r2"]
        assert all(r["ok"] for r in responses)
        for target in (16, 20):
            direct = EstimaPredictor(EstimaConfig()).predict(measured, target_cores=target)
            for response in responses:
                if response["result"]["target_cores"] == target:
                    assert response["result"]["predicted_times_s"] == [
                        float(t) for t in direct.predicted_times
                    ]

    def test_malformed_and_unknown_op_keep_slot_order(self):
        with _TcpServer(PredictionServer(EstimaConfig())) as tcp:
            responses = _client_roundtrip(
                tcp.address,
                [
                    '{"id": 0, "target_cores": 5}',  # parse error (cheap)
                    "this is not json",
                    '{"id": 2, "op": "mystery"}',
                ],
            )
        assert [r["id"] for r in responses] == [0, None, 2]
        assert not any(r["ok"] for r in responses)
        assert "bad JSON" in responses[1]["error"]
        assert "unknown op" in responses[2]["error"]


class TestStreamedCampaignDeterminism:
    """Satellite pin: streamed rows == `estima campaign --json`, all executors."""

    @pytest.fixture(scope="class")
    def batch(self):
        """The batch reference, straight from the CLI (run once per class)."""
        import contextlib
        import io

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(
                [
                    "campaign",
                    "--machine",
                    "xeon20",
                    "--measure-cores",
                    "10",
                    "--workloads",
                    ",".join(CAMPAIGN_WORKLOADS),
                    "--core-counts",
                    CAMPAIGN_CORE_COUNTS,
                    "--targets",
                    "half=16,full=20",
                    "--json",
                ]
            )
        assert code == 0
        return json.loads(stdout.getvalue())

    @pytest.mark.parametrize("executor", [None, "threads:2", "parallel:2"])
    def test_streamed_rows_bit_identical_to_batch_json(self, executor, batch):
        with _TcpServer(PredictionServer(EstimaConfig())) as tcp:
            responses = _client_roundtrip(
                tcp.address, [json.dumps(_campaign_request("c", executor=executor))]
            )
        *rows, final = responses
        assert final["ok"] and final["done"] and final["rows"] == len(CAMPAIGN_WORKLOADS)
        # One row per workload, streamed in campaign (= batch) order, and
        # each streamed row is the same JSON payload as the batch row.
        assert [r["row"]["workload"] for r in rows] == CAMPAIGN_WORKLOADS
        for streamed, batch_row in zip(rows, batch["rows"]):
            assert json.dumps(streamed["row"], sort_keys=True) == json.dumps(
                batch_row, sort_keys=True
            )
        assert json.dumps(final["summary"]["rows"], sort_keys=True) == json.dumps(
            batch["rows"], sort_keys=True
        )
        assert json.dumps(final["summary"]["aggregates"], sort_keys=True) == json.dumps(
            batch["aggregates"], sort_keys=True
        )


class TestWorkerPool:
    @pytest.mark.slow
    def test_concurrency_stress_no_drops_dups_or_reorders(self, tmp_path, measured):
        """Stress variant: mixed predict/campaign clients against 2 workers.

        Probabilistic by nature (real forked workers, OS scheduling); the
        deterministic scripted-schedule variant of the same per-connection
        FIFO contract is ``TestScriptedClientSchedule`` below.
        """
        config = EstimaConfig(use_fit_cache=True, cache_dir=str(tmp_path / "tier2"))
        pool = WorkerPool(
            config, workers=2, tcp="127.0.0.1:0", batch_window_ms=2.0
        ).start()
        measured_doc = measured.to_dict()
        n_clients = 6
        campaign_clients = {0, 1}  # two clients mix a campaign into their stream

        def client_lines(client: int) -> list[str]:
            lines = []
            for i, target in enumerate((16, 20, 16)):
                lines.append(
                    json.dumps(
                        {
                            "id": f"c{client}-p{i}",
                            "target_cores": target,
                            "measurements": measured_doc,
                        }
                    )
                )
                if i == 1 and client in campaign_clients:
                    lines.append(
                        json.dumps(
                            _campaign_request(f"c{client}-camp", workloads=["genome"])
                        )
                    )
            return lines

        results: dict[int, list[dict]] = {}
        errors: list[BaseException] = []

        def run_client(client: int) -> None:
            try:
                results[client] = _client_roundtrip(pool.address, client_lines(client))
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=run_client, args=(client,)) for client in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        try:
            assert not errors, errors
            assert set(results) == set(range(n_clients))
            for client, responses in results.items():
                # Reconstruct the exact expected response id sequence: one
                # response per predict, rows+final for the campaign, all in
                # request order — any drop/dup/reorder breaks the equality.
                expected: list[str] = []
                for line in client_lines(client):
                    request = json.loads(line)
                    if request.get("op") == "campaign":
                        expected.extend([request["id"]] * 2)  # 1 row + final
                    else:
                        expected.append(request["id"])
                assert [r["id"] for r in responses] == expected, f"client {client}"
                assert all(r["ok"] for r in responses), f"client {client}"
                campaign_docs = [r for r in responses if r.get("op") == "campaign"]
                if client in campaign_clients:
                    assert campaign_docs[0]["row"]["workload"] == "genome"
                    assert campaign_docs[-1]["done"] and campaign_docs[-1]["rows"] == 1

            # Merged per-worker stats add up to the traffic actually sent.
            stats = pool.stats()
            merged = stats["merged"]["server"]
            n_predicts = 3 * n_clients
            n_campaigns = len(campaign_clients)
            assert merged["requests"] == n_predicts + n_campaigns
            assert merged["responses"] == n_predicts + n_campaigns
            assert merged["errors"] == 0
            assert merged["campaigns"] == n_campaigns
            assert merged["campaign_rows"] == n_campaigns  # one workload each
            assert len(stats["per_worker"]) == 2
            assert (
                sum(w["server"]["responses"] for w in stats["per_worker"] if w)
                == merged["responses"]
            )
        finally:
            pool.stop()

    def test_scripted_client_interleaving_keeps_per_connection_fifo(self):
        """Deterministic variant of the concurrency stress: the schedule
        controller fixes the exact global order of the clients' sends, so
        the per-connection FIFO contract is checked under one scripted
        interleaving instead of whatever the OS happened to produce."""
        from repro.testing import ScheduleController, sync_point

        results: dict[str, list[dict]] = {}

        def client(tcp, name: str) -> None:
            sock = socket.create_connection(tcp.address, timeout=30)
            try:
                stream = sock.makefile("rwb")
                for i in range(2):
                    # Cheap error-path request: parse fails, id survives.
                    line = json.dumps({"id": f"{name}-{i}", "target_cores": 5})
                    stream.write(line.encode() + b"\n")
                    stream.flush()
                    sync_point("test.client.sent")
                sock.shutdown(socket.SHUT_WR)
                results[name] = [json.loads(line) for line in stream]
            finally:
                sock.close()

        with _TcpServer(PredictionServer(EstimaConfig())) as tcp:
            controller = ScheduleController(stall_timeout=0.1, deadlock_timeout=15.0)
            with controller.install():
                for name in ("a", "b", "c"):
                    controller.spawn(name, client, tcp, name)
                # First requests land c, a, b; second requests b, c, a —
                # a fixed cross-connection order no stress run guarantees.
                controller.drive([
                    "c", "a", "b",
                    "b@test.client.sent",
                    "c@test.client.sent",
                    "a@test.client.sent",
                ])
        for name in ("a", "b", "c"):
            assert [r["id"] for r in results[name]] == [f"{name}-0", f"{name}-1"]
            assert not any(r["ok"] for r in results[name])

    def test_worker_restart_on_crash(self):
        pool = WorkerPool(
            EstimaConfig(), workers=1, tcp="127.0.0.1:0", health_interval_s=0.05
        ).start()
        try:
            assert pool.ping() == [True]
            [pid] = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            deadline = time.time() + 30
            while time.time() < deadline:
                if pool.restarts >= 1 and pool.ping() == [True]:
                    break
                time.sleep(0.05)
            assert pool.restarts >= 1
            assert pool.worker_pids() != [pid]
            # The replacement worker serves traffic (cheap request error).
            [response] = _client_roundtrip(pool.address, ['{"id": 7, "target_cores": 5}'])
            assert response["id"] == 7 and not response["ok"]
        finally:
            summary = pool.stop()
        assert summary["restarts"] >= 1

    def test_unix_socket_transport(self, tmp_path):
        socket_path = str(tmp_path / "pool.sock")
        pool = WorkerPool(
            EstimaConfig(), workers=1, unix_socket=socket_path
        ).start()
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(socket_path)
            stream = sock.makefile("rwb")
            stream.write(b'{"id": 1, "target_cores": 5}\n')
            stream.flush()
            sock.shutdown(socket.SHUT_WR)
            [response] = [json.loads(line) for line in stream]
            sock.close()
            assert response["id"] == 1 and not response["ok"]
        finally:
            pool.stop()
        assert not os.path.exists(socket_path)  # cleaned up on stop

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(EstimaConfig(), workers=0, tcp="127.0.0.1:0")
        with pytest.raises(ValueError, match="exactly one"):
            WorkerPool(EstimaConfig(), workers=1)
        with pytest.raises(ValueError, match="exactly one"):
            WorkerPool(EstimaConfig(), workers=1, tcp="h:1", unix_socket="/tmp/x")


class TestServeCliTcp:
    def test_cli_tcp_worker_pool_subprocess(self, tmp_path):
        """End-to-end: `estima serve --tcp ... --workers 2` as a subprocess."""
        import re
        import subprocess
        import sys as _sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent.parent / "src"
        proc = subprocess.Popen(
            [
                _sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--stats",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"serving on tcp 127\.0\.0\.1:(\d+) with 2 workers", banner)
            assert match, banner
            port = int(match.group(1))
            [response] = _client_roundtrip(("127.0.0.1", port), ['{"id": 3, "target_cores": 5}'])
            assert response["id"] == 3 and not response["ok"]
            proc.send_signal(signal.SIGINT)
            _, stderr_rest = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr_rest
        summary = json.loads(stderr_rest.strip().splitlines()[-1])
        assert summary["workers"] == 2
        assert summary["merged"]["server"]["requests"] >= 1
