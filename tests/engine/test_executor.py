"""Tests for the pluggable execution backends."""

from __future__ import annotations

import os

import pytest

from repro.engine.executor import (
    ENV_EXECUTOR,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_for_config,
    get_executor,
)


def _double(x: int) -> int:
    """Module-level so the process-pool backend can pickle it."""
    return 2 * x


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_empty_input(self):
        assert SerialExecutor().map(_double, []) == []

    def test_closures_are_fine_in_process(self):
        offset = 10
        assert SerialExecutor().map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(_double, [1]) == [2]


class TestParallelExecutor:
    def test_maps_in_submission_order(self):
        result = ParallelExecutor(max_workers=2).map(_double, list(range(8)))
        assert result == [2 * i for i in range(8)]

    def test_single_item_runs_inline(self):
        assert ParallelExecutor().map(_double, [21]) == [42]

    def test_matches_serial_results(self):
        items = list(range(12))
        assert ParallelExecutor(max_workers=2).map(_double, items) == SerialExecutor().map(
            _double, items
        )

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=-1)

    def test_auto_worker_count(self):
        executor = ParallelExecutor()
        assert executor.max_workers == (os.cpu_count() or 1)


class TestGetExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        assert isinstance(get_executor(), SerialExecutor)

    def test_named_backends(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("parallel"), ParallelExecutor)

    def test_parallel_worker_suffix(self):
        executor = get_executor("parallel:3")
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 3

    def test_invalid_suffix_rejected(self):
        with pytest.raises(ValueError):
            get_executor("parallel:lots")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_executor("quantum")

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert get_executor(executor) is executor

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel:2")
        executor = get_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2


class TestExecutorForConfig:
    def test_config_selects_parallel(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        executor = executor_for_config(EstimaConfig(executor="parallel", max_workers=2))
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2

    def test_env_overrides_default_config(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel")
        from repro.core import EstimaConfig

        assert isinstance(executor_for_config(EstimaConfig()), ParallelExecutor)

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel")
        from repro.core import EstimaConfig

        executor = executor_for_config(EstimaConfig(), "serial")
        assert isinstance(executor, SerialExecutor)

    def test_executor_field_validated(self):
        from repro.core import EstimaConfig

        with pytest.raises(ValueError):
            EstimaConfig(executor="quantum")
        with pytest.raises(ValueError):
            EstimaConfig(max_workers=-2)
