"""Tests for the pluggable execution backends."""

from __future__ import annotations

import os

import pytest

from repro.engine.executor import (
    ENV_EXECUTOR,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    active_fit_pool,
    executor_for_config,
    fit_pool_for_config,
    get_executor,
    parse_executor_spec,
)


def _double(x: int) -> int:
    """Module-level so the process-pool backend can pickle it."""
    return 2 * x


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_empty_input(self):
        assert SerialExecutor().map(_double, []) == []

    def test_closures_are_fine_in_process(self):
        offset = 10
        assert SerialExecutor().map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(_double, [1]) == [2]


class TestImapStreaming:
    """`imap` yields results in input order, lazily, identical to `map`."""

    def test_serial_imap_is_lazy_and_ordered(self):
        executor = SerialExecutor()
        seen: list[int] = []
        iterator = executor.imap(lambda x: seen.append(x) or 2 * x, [3, 1, 2])
        assert seen == []  # nothing computed until consumed
        assert next(iterator) == 6
        assert seen == [3]  # item 1 was visible before items 2..n ran
        assert list(iterator) == [2, 4]

    def test_thread_imap_matches_map(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert list(executor.imap(_double, list(range(8)))) == [2 * i for i in range(8)]

    def test_parallel_imap_streams_in_submission_order(self):
        executor = ParallelExecutor(max_workers=2)
        assert list(executor.imap(_double, list(range(8)))) == [2 * i for i in range(8)]

    def test_parallel_imap_single_item_runs_inline(self):
        assert list(ParallelExecutor().imap(_double, [21])) == [42]

    def test_imap_counts_tasks_like_map(self):
        executor = SerialExecutor()
        list(executor.imap(_double, [1, 2, 3]))
        assert executor.tasks_mapped == 3
        assert executor.batches_mapped == 1


class TestParallelExecutor:
    def test_maps_in_submission_order(self):
        result = ParallelExecutor(max_workers=2).map(_double, list(range(8)))
        assert result == [2 * i for i in range(8)]

    def test_single_item_runs_inline(self):
        assert ParallelExecutor().map(_double, [21]) == [42]

    def test_matches_serial_results(self):
        items = list(range(12))
        assert ParallelExecutor(max_workers=2).map(_double, items) == SerialExecutor().map(
            _double, items
        )

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=-1)

    def test_auto_worker_count(self):
        executor = ParallelExecutor()
        assert executor.max_workers == (os.cpu_count() or 1)


class TestThreadExecutor:
    def test_maps_in_submission_order(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.map(_double, list(range(16))) == [2 * i for i in range(16)]

    def test_closures_are_fine(self):
        offset = 7
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.map(lambda x: x + offset, [1, 2, 3]) == [8, 9, 10]

    def test_matches_serial_results(self):
        items = list(range(25))
        with ThreadExecutor(max_workers=3) as executor:
            assert executor.map(_double, items) == SerialExecutor().map(_double, items)

    def test_pool_is_reused_across_map_calls(self):
        with ThreadExecutor(max_workers=2) as executor:
            executor.map(_double, [1, 2, 3])
            pool = executor._pool
            executor.map(_double, [4, 5, 6])
            assert executor._pool is pool

    def test_counters_accumulate(self):
        with ThreadExecutor(max_workers=2) as executor:
            executor.map(_double, [1, 2, 3])
            executor.map(_double, [4])
            stats = executor.stats()
        assert stats["tasks"] == 4
        assert stats["batches"] == 2
        assert stats["backend"] == "threads"

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=-1)


class TestParseExecutorSpec:
    def test_plain_names(self):
        assert parse_executor_spec("serial") == ("serial", None)
        assert parse_executor_spec("threads") == ("threads", None)
        assert parse_executor_spec("parallel") == ("parallel", None)

    def test_worker_suffixes(self):
        assert parse_executor_spec("threads:4") == ("threads", 4)
        assert parse_executor_spec("parallel:2") == ("parallel", 2)

    def test_malformed_specs_raise_clear_errors(self):
        with pytest.raises(ValueError, match="unknown executor"):
            parse_executor_spec("quantum")
        with pytest.raises(ValueError, match="worker count"):
            parse_executor_spec("parallel:abc")
        with pytest.raises(ValueError, match="worker count"):
            parse_executor_spec("threads:-3")
        with pytest.raises(ValueError, match="no worker count"):
            parse_executor_spec("serial:2")


class TestFitPool:
    def test_serial_config_has_no_fit_pool(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        assert fit_pool_for_config(EstimaConfig()) is None

    def test_threads_config_gets_shared_pool(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        config = EstimaConfig(executor="threads:2")
        pool = fit_pool_for_config(config)
        assert isinstance(pool, ThreadExecutor)
        assert fit_pool_for_config(config) is pool  # one shared pool

    def test_parallel_config_has_no_fit_pool(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        assert fit_pool_for_config(EstimaConfig(executor="parallel")) is None

    def test_env_threads_selects_pool_for_default_config(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "threads:2")
        from repro.core import EstimaConfig

        assert isinstance(fit_pool_for_config(EstimaConfig()), ThreadExecutor)

    def test_active_fit_pool_context_pins_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        config = EstimaConfig()
        with ThreadExecutor(max_workers=1) as pinned:
            with active_fit_pool(pinned):
                assert fit_pool_for_config(config) is pinned
            assert fit_pool_for_config(config) is None


class TestGetExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        assert isinstance(get_executor(), SerialExecutor)

    def test_named_backends(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("threads"), ThreadExecutor)
        assert isinstance(get_executor("parallel"), ParallelExecutor)

    def test_parallel_worker_suffix(self):
        executor = get_executor("parallel:3")
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 3

    def test_threads_worker_suffix(self):
        executor = get_executor("threads:3")
        assert isinstance(executor, ThreadExecutor)
        assert executor.max_workers == 3

    def test_invalid_suffix_rejected(self):
        with pytest.raises(ValueError):
            get_executor("parallel:lots")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_executor("quantum")

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert get_executor(executor) is executor

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel:2")
        executor = get_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2


class TestExecutorForConfig:
    def test_config_selects_parallel(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        from repro.core import EstimaConfig

        executor = executor_for_config(EstimaConfig(executor="parallel", max_workers=2))
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 2

    def test_env_overrides_default_config(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel")
        from repro.core import EstimaConfig

        assert isinstance(executor_for_config(EstimaConfig()), ParallelExecutor)

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "parallel")
        from repro.core import EstimaConfig

        executor = executor_for_config(EstimaConfig(), "serial")
        assert isinstance(executor, SerialExecutor)

    def test_executor_field_validated(self):
        from repro.core import EstimaConfig

        with pytest.raises(ValueError):
            EstimaConfig(executor="quantum")
        with pytest.raises(ValueError):
            EstimaConfig(executor="parallel:abc")
        with pytest.raises(ValueError):
            EstimaConfig(max_workers=-2)
        EstimaConfig(executor="threads:4")  # valid spec constructs fine


class TestEnvValidationAtConfigConstruction:
    """Malformed engine env vars fail fast with clear errors (satellite fix)."""

    def test_malformed_env_executor_raises_at_construction(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv(ENV_EXECUTOR, "parallel:abc")
        with pytest.raises(ValueError, match="ESTIMA_EXECUTOR"):
            EstimaConfig()
        monkeypatch.setenv(ENV_EXECUTOR, "quantum")
        with pytest.raises(ValueError, match="ESTIMA_EXECUTOR"):
            EstimaConfig()

    def test_valid_env_executor_accepted(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv(ENV_EXECUTOR, "threads:2")
        EstimaConfig()

    def test_malformed_env_fit_cache_raises_at_construction(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_FIT_CACHE", "maybe")
        with pytest.raises(ValueError, match="ESTIMA_FIT_CACHE"):
            EstimaConfig()

    def test_recognised_fit_cache_tokens_accepted(self, monkeypatch):
        from repro.core import EstimaConfig

        for token in ("1", "0", "true", "no", "ON", ""):
            monkeypatch.setenv("ESTIMA_FIT_CACHE", token)
            EstimaConfig()

    def test_malformed_cache_max_bytes_raises_at_construction(self, monkeypatch):
        from repro.core import EstimaConfig

        monkeypatch.setenv("ESTIMA_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValueError, match="ESTIMA_CACHE_MAX_BYTES"):
            EstimaConfig()
        monkeypatch.setenv("ESTIMA_CACHE_MAX_BYTES", "-5")
        with pytest.raises(ValueError, match="ESTIMA_CACHE_MAX_BYTES"):
            EstimaConfig()
