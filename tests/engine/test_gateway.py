"""Tests for the HTTP/JSON gateway (`repro.engine.gateway`).

Pinned contracts:

* **routes** — `estima serve --http` serves predict / predict_batch /
  campaign / healthz / metrics with the documented status codes;
* **determinism** — predictions served over HTTP are bit-identical to a
  standalone `EstimaPredictor`, and campaign rows streamed as HTTP chunks
  are bit-identical to batch `estima campaign --json` output;
* **one stats source** — `GET /metrics` and the `--stats` snapshot
  (`HttpGateway.stats()`) report identical counter values;
* **worker pool** — `--workers 4` pre-forks HTTP workers behind one
  listening socket; concurrent keep-alive clients observe no drops,
  duplicates or reorders and the merged counters add up.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.core import EstimaConfig, EstimaPredictor
from repro.engine.gateway import (
    ROUTES,
    STATUS_REASONS,
    HttpGateway,
    flatten_stats,
    metrics_text,
    serve_http,
)
from repro.engine.pool import WorkerPool
from repro.engine.server import PredictionServer

CAMPAIGN_CORE_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20]
CAMPAIGN_TARGETS = {"half": 16, "full": 20}


@pytest.fixture(scope="module")
def measured(xeon20_simulator):
    from repro.workloads import get_workload

    sweep = xeon20_simulator.sweep(
        get_workload("genome"), core_counts=[1, 2, 3, 4, 6, 8, 10]
    )
    return sweep.restrict_to(10)


@pytest.fixture(scope="module")
def direct(measured):
    """Reference predictions straight from a per-request predictor."""
    return {
        target: EstimaPredictor(EstimaConfig()).predict(measured, target_cores=target)
        for target in (16, 20)
    }


def _campaign_request(request_id):
    return {
        "id": request_id,
        "machine": "xeon20",
        "measure_cores": 10,
        "targets": CAMPAIGN_TARGETS,
        "workloads": ["genome"],
        "core_counts": CAMPAIGN_CORE_COUNTS,
    }


class _HttpServer:
    """In-process asyncio HTTP gateway driven from a background thread."""

    def __init__(self, gateway: HttpGateway) -> None:
        self.gateway = gateway
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            task = self._loop.create_task(
                serve_http(
                    self.gateway,
                    "127.0.0.1",
                    0,
                    on_listening=lambda addr: (
                        setattr(self, "address", addr),
                        self._ready.set(),
                    ),
                )
            )
            await self._stop.wait()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            await self.gateway.server.stop()

        asyncio.run(body())

    def __enter__(self) -> "_HttpServer":
        self._thread.start()
        assert self._ready.wait(timeout=30), "HTTP server did not come up"
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _request(address, method, path, body=None, timeout=600):
    """One HTTP request on a fresh connection; returns (status, headers, raw body)."""
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            status, _, body = _request(http_server.address, "GET", "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_predict_bit_identical_and_keep_alive(self, measured, direct):
        """Predictions over HTTP match the per-request predictor bit for bit,
        and several requests ride one keep-alive connection."""
        gateway = HttpGateway(PredictionServer(EstimaConfig(), batch_window_ms=20.0))
        with _HttpServer(gateway) as http_server:
            conn = http.client.HTTPConnection(*http_server.address, timeout=600)
            try:
                for i, target in enumerate((16, 20)):
                    conn.request(
                        "POST",
                        "/v1/predict",
                        body=json.dumps(
                            {
                                "id": f"r{i}",
                                "target_cores": target,
                                "measurements": measured.to_dict(),
                            }
                        ),
                    )
                    response = conn.getresponse()
                    document = json.loads(response.read())
                    assert response.status == 200 and document["ok"]
                    assert document["id"] == f"r{i}"
                    assert document["result"]["predicted_times_s"] == [
                        float(t) for t in direct[target].predicted_times
                    ]
            finally:
                conn.close()

    def test_predict_batch_order_and_multi_status(self, measured, direct):
        payload = {
            "requests": [
                {"id": "b0", "target_cores": 20, "measurements": measured.to_dict()},
                {"id": "b1", "target_cores": 16, "measurements": measured.to_dict()},
                {"id": "bad", "target_cores": 5},  # no measurement source
            ]
        }
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            status, _, body = _request(
                http_server.address, "POST", "/v1/predict_batch", payload
            )
        assert status == 200
        document = json.loads(body)
        assert document["ok"] is False  # multi-status: one element failed
        assert [r["id"] for r in document["responses"]] == ["b0", "b1", "bad"]
        assert [r["ok"] for r in document["responses"]] == [True, True, False]
        for response, target in zip(document["responses"], (20, 16)):
            assert response["result"]["predicted_times_s"] == [
                float(t) for t in direct[target].predicted_times
            ]

    def test_error_statuses(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            address = http_server.address
            status, _, body = _request(address, "GET", "/nope")
            assert status == 404 and not json.loads(body)["ok"]
            status, headers, body = _request(address, "GET", "/v1/predict")
            assert status == 405 and not json.loads(body)["ok"]
            assert "POST" in headers.get("Allow", "")
            status, _, body = _request(address, "POST", "/v1/predict", timeout=60)
            # http.client sends Content-Length: 0 for an empty body -> bad JSON
            assert status == 400 and "bad JSON" in json.loads(body)["error"]
            status, _, body = _request(
                address, "POST", "/v1/predict", {"op": "campaign", "id": 9}
            )
            assert status == 400 and "/v1/campaign" in json.loads(body)["error"]
            status, _, body = _request(address, "POST", "/v1/predict", {"id": 1})
            assert status == 400 and "target_cores" in json.loads(body)["error"]

    def test_framing_errors_411_and_400(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            sock = socket.create_connection(http_server.address, timeout=60)
            try:
                sock.sendall(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\n\r\n")
                reply = sock.recv(4096)
                assert reply.startswith(b"HTTP/1.1 411 ")
            finally:
                sock.close()
            sock = socket.create_connection(http_server.address, timeout=60)
            try:
                sock.sendall(b"GARBAGE\r\n")
                reply = sock.recv(4096)
                assert reply.startswith(b"HTTP/1.1 400 ")
            finally:
                sock.close()

    def test_framing_errors_chunked_body_and_bad_length(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            sock = socket.create_connection(http_server.address, timeout=60)
            try:
                sock.sendall(
                    b"POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                assert sock.recv(4096).startswith(b"HTTP/1.1 411 ")
            finally:
                sock.close()
            sock = socket.create_connection(http_server.address, timeout=60)
            try:
                sock.sendall(
                    b"POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                assert sock.recv(4096).startswith(b"HTTP/1.1 400 ")
            finally:
                sock.close()

    def test_get_with_body_keeps_connection_in_sync(self):
        """A GET carrying Content-Length is odd but legal: its body must be
        consumed, or the next keep-alive request reads garbage."""
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            conn = http.client.HTTPConnection(*http_server.address, timeout=60)
            try:
                conn.request("GET", "/healthz", body='{"ignored": true}')
                response = conn.getresponse()
                assert response.status == 200 and json.loads(response.read())["ok"]
                conn.request("GET", "/healthz")  # same connection, must not 400
                response = conn.getresponse()
                assert response.status == 200 and json.loads(response.read())["ok"]
            finally:
                conn.close()

    def test_pipeline_failure_maps_to_500(self, measured):
        """Server-side failures are 5xx, not 400: retry policies must see
        the difference from a genuinely bad request."""
        gateway = HttpGateway(PredictionServer(EstimaConfig()))

        def exploding_predict_batch(requests):
            raise RuntimeError("solver melted")

        gateway.server.service.predict_batch = exploding_predict_batch
        with _HttpServer(gateway) as http_server:
            status, _, body = _request(
                http_server.address, "POST", "/v1/predict",
                {"id": 1, "target_cores": 16, "measurements": measured.to_dict()},
            )
        document = json.loads(body)
        assert status == 500
        assert document["error_kind"] == "internal"
        assert "solver melted" in document["error"]

    def test_connection_close_honoured(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            sock = socket.create_connection(http_server.address, timeout=60)
            try:
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
                )
                reply = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break  # server closed, as requested
                    reply = reply + chunk
                assert reply.startswith(b"HTTP/1.1 200 ")
                assert b"Connection: close" in reply
            finally:
                sock.close()

    def test_handler_crash_returns_500_and_closes(self):
        gateway = HttpGateway(PredictionServer(EstimaConfig()))

        async def boom(body):
            raise RuntimeError("handler exploded")

        gateway._predict = boom
        with _HttpServer(gateway) as http_server:
            status, headers, body = _request(
                http_server.address, "POST", "/v1/predict", {"id": 1}, timeout=60
            )
        assert status == 500
        assert "handler exploded" in json.loads(body)["error"]
        assert headers.get("Connection") == "close"

    def test_oversized_body_413(self):
        gateway = HttpGateway(PredictionServer(EstimaConfig()), max_body_bytes=64)
        with _HttpServer(gateway) as http_server:
            status, _, body = _request(
                http_server.address, "POST", "/v1/predict",
                {"id": 1, "padding": "x" * 200}, timeout=60,
            )
        assert status == 413
        assert "exceeds" in json.loads(body)["error"]

    def test_routes_registry_matches_dispatch(self):
        """Every registered route answers something other than 404."""
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            for method, path in ROUTES:
                if method == "GET":
                    status, _, _ = _request(http_server.address, method, path, timeout=60)
                else:
                    status, _, _ = _request(
                        http_server.address, method, path, {"probe": True}, timeout=60
                    )
                assert status != 404, f"{method} {path} is registered but unrouted"
                assert status in STATUS_REASONS


class TestCampaignOverHttp:
    """Satellite pin: HTTP-chunked campaign rows == `estima campaign --json`."""

    @pytest.fixture(scope="class")
    def batch(self):
        """The batch reference, straight from the CLI (run once per class)."""
        import contextlib
        import io

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(
                [
                    "campaign",
                    "--machine", "xeon20",
                    "--measure-cores", "10",
                    "--workloads", "genome",
                    "--core-counts", ",".join(str(c) for c in CAMPAIGN_CORE_COUNTS),
                    "--targets", "half=16,full=20",
                    "--json",
                ]
            )
        assert code == 0
        return json.loads(stdout.getvalue())

    def test_streamed_chunks_bit_identical_to_batch_json(self, batch):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            conn = http.client.HTTPConnection(*http_server.address, timeout=600)
            try:
                conn.request(
                    "POST", "/v1/campaign", body=json.dumps(_campaign_request("c"))
                )
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Content-Type") == "application/x-ndjson"
                documents = [
                    json.loads(line)
                    for line in response.read().decode().strip().splitlines()
                ]
                # The connection survives the chunked stream: keep-alive works.
                conn.request("GET", "/healthz")
                assert conn.getresponse().status == 200
            finally:
                conn.close()
        *rows, final = documents
        assert final["ok"] and final["done"] and final["rows"] == 1
        assert [r["row"]["workload"] for r in rows] == ["genome"]
        for streamed, batch_row in zip(rows, batch["rows"]):
            assert json.dumps(streamed["row"], sort_keys=True) == json.dumps(
                batch_row, sort_keys=True
            )
        assert json.dumps(final["summary"]["rows"], sort_keys=True) == json.dumps(
            batch["rows"], sort_keys=True
        )
        assert json.dumps(final["summary"]["aggregates"], sort_keys=True) == json.dumps(
            batch["aggregates"], sort_keys=True
        )

    def test_invalid_campaign_rejected_before_streaming(self):
        with _HttpServer(HttpGateway(PredictionServer(EstimaConfig()))) as http_server:
            status, headers, body = _request(
                http_server.address, "POST", "/v1/campaign",
                {"id": "x", "machine": "not-a-machine"}, timeout=60,
            )
        assert status == 400  # a real status line, not a 200 with an error inside
        assert headers.get("Transfer-Encoding") != "chunked"
        assert not json.loads(body)["ok"]


class TestMetricsStatsIdentity:
    """Satellite fix: GET /metrics and the --stats snapshot never disagree."""

    #: Derived from wall-clock elapsed time, so any two snapshots differ.
    _TIME_DERIVED = {"estima_server_throughput_rps"}

    @staticmethod
    def _parse_metrics(text: str) -> dict[str, float]:
        parsed = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                parsed[name] = float(value)
        return parsed

    def test_metrics_equal_stats_snapshot(self, measured):
        gateway = HttpGateway(PredictionServer(EstimaConfig()))
        with _HttpServer(gateway) as http_server:
            address = http_server.address
            _request(address, "GET", "/healthz", timeout=60)
            _request(
                address, "POST", "/v1/predict",
                {"id": 1, "target_cores": 16, "measurements": measured.to_dict()},
            )
            _request(address, "POST", "/v1/predict", {"id": 2}, timeout=60)  # error
            status, _, body = _request(address, "GET", "/metrics", timeout=60)
            assert status == 200
            # /metrics counts itself before rendering, so a snapshot taken
            # right after must match the exposition exactly (identical
            # counters from one assembly: HttpGateway.stats + flatten_stats).
            snapshot = gateway.stats()
        parsed = self._parse_metrics(body.decode())
        flattened = flatten_stats(snapshot)
        assert flattened  # non-vacuous: counters exist
        for name, value in flattened.items():
            if name in self._TIME_DERIVED:
                assert name in parsed
                continue
            assert parsed.get(name) == value, f"{name}: /metrics {parsed.get(name)} != stats {value}"
        # Nothing in the exposition is missing from the snapshot either.
        assert set(parsed) == set(flattened)
        # Spot-check semantics, not just equality.
        assert parsed["estima_server_requests"] == 2.0
        assert parsed["estima_server_errors"] == 1.0
        assert parsed["estima_http_requests_by_route_get_metrics"] == 1.0
        assert parsed["estima_http_responses_by_status_400"] == 1.0

    def test_metrics_text_is_valid_prometheus(self):
        text = metrics_text({"server": {"requests": 3, "nested": {"max_x": 1.5}}})
        lines = [line for line in text.splitlines() if line]
        assert "# TYPE estima_server_requests gauge" in lines
        assert "estima_server_requests 3.0" in lines
        assert "estima_server_nested_max_x 1.5" in lines
        for line in lines:
            if not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name.replace("_", "").isalnum()
                float(value)  # every sample parses


class TestHttpWorkerPool:
    def test_multi_client_stress_4_workers(self, measured, direct):
        """Acceptance pin: `--workers 4` serves concurrent HTTP clients with
        no drops, duplicates or reorders, and merged counters add up."""
        pool = WorkerPool(
            EstimaConfig(), workers=4, tcp="127.0.0.1:0",
            protocol="http", batch_window_ms=2.0,
        ).start()
        measured_doc = measured.to_dict()
        n_clients = 6
        campaign_clients = {0, 1}
        results: dict[int, list[tuple[str, int, dict]]] = {}
        errors: list[BaseException] = []

        def run_client(client: int) -> None:
            try:
                observed: list[tuple[str, int, dict]] = []
                conn = http.client.HTTPConnection(*pool.address, timeout=600)
                try:
                    for i, target in enumerate((16, 20)):
                        conn.request(
                            "POST", "/v1/predict",
                            body=json.dumps(
                                {
                                    "id": f"c{client}-p{i}",
                                    "target_cores": target,
                                    "measurements": measured_doc,
                                }
                            ),
                        )
                        response = conn.getresponse()
                        observed.append(
                            ("predict", response.status, json.loads(response.read()))
                        )
                        if i == 0 and client in campaign_clients:
                            conn.request(
                                "POST", "/v1/campaign",
                                body=json.dumps(_campaign_request(f"c{client}-camp")),
                            )
                            response = conn.getresponse()
                            documents = [
                                json.loads(line)
                                for line in response.read().decode().strip().splitlines()
                            ]
                            observed.append(("campaign", response.status, documents))
                finally:
                    conn.close()
                results[client] = observed
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=run_client, args=(client,))
            for client in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        try:
            assert not errors, errors
            assert set(results) == set(range(n_clients))
            for client, observed in results.items():
                kinds = [kind for kind, _, _ in observed]
                expected_kinds = (
                    ["predict", "campaign", "predict"]
                    if client in campaign_clients
                    else ["predict", "predict"]
                )
                assert kinds == expected_kinds, f"client {client}"
                predicts = [entry for entry in observed if entry[0] == "predict"]
                for (kind, status, document), target in zip(predicts, (16, 20)):
                    assert status == 200 and document["ok"], f"client {client}"
                    # Workers fork with no shared mutable state (no disk
                    # tier here), so served numbers stay bit-identical to
                    # the per-request predictor even across processes.
                    assert document["result"]["predicted_times_s"] == [
                        float(t) for t in direct[target].predicted_times
                    ], f"client {client}"
                if client in campaign_clients:
                    _, status, documents = observed[1]
                    assert status == 200
                    *rows, final = documents
                    assert [r["row"]["workload"] for r in rows] == ["genome"]
                    assert final["done"] and final["rows"] == 1, f"client {client}"

            stats = pool.stats()
            merged = stats["merged"]
            n_predicts = 2 * n_clients
            n_campaigns = len(campaign_clients)
            assert merged["server"]["requests"] == n_predicts + n_campaigns
            assert merged["server"]["responses"] == n_predicts + n_campaigns
            assert merged["server"]["errors"] == 0
            assert merged["http"]["requests_by_route"]["POST /v1/predict"] == n_predicts
            assert merged["http"]["requests_by_route"]["POST /v1/campaign"] == n_campaigns
            assert merged["http"]["responses_by_status"]["200"] == n_predicts + n_campaigns
            assert len(stats["per_worker"]) == 4
        finally:
            pool.stop()

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="protocol"):
            WorkerPool(EstimaConfig(), workers=1, tcp="127.0.0.1:0", protocol="gopher")


class TestServeCliHttp:
    def test_cli_http_worker_pool_subprocess(self):
        """End-to-end: `estima serve --http ... --workers 2 --stats`."""
        import os
        import re
        import signal
        import subprocess
        import sys as _sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent.parent / "src"
        proc = subprocess.Popen(
            [
                _sys.executable, "-m", "repro.cli", "serve",
                "--http", "127.0.0.1:0", "--workers", "2", "--stats",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"serving on http 127\.0\.0\.1:(\d+) with 2 workers", banner)
            assert match, banner
            address = ("127.0.0.1", int(match.group(1)))
            status, _, body = _request(address, "GET", "/healthz", timeout=120)
            assert status == 200 and json.loads(body)["ok"]
            status, _, body = _request(
                address, "POST", "/v1/predict", {"id": 3, "target_cores": 5}, timeout=120
            )
            assert status == 400 and not json.loads(body)["ok"]
            status, _, body = _request(address, "GET", "/metrics", timeout=120)
            assert status == 200 and b"estima_server_requests" in body
            proc.send_signal(signal.SIGINT)
            _, stderr_rest = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr_rest
        summary = json.loads(stderr_rest.strip().splitlines()[-1])
        assert summary["workers"] == 2
        assert summary["merged"]["server"]["requests"] >= 1
        assert summary["merged"]["http"]["requests_by_route"]["GET /healthz"] == 1
