"""Tests for the content-addressed memoization layer and its core wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimaConfig
from repro.core.fitting import fit_kernel
from repro.core.kernels import get_kernel
from repro.core.regression import extrapolate_series
from repro.engine.cache import (
    EXTRAPOLATION_CACHE,
    FIT_CACHE,
    ContentCache,
    caches_enabled,
    digest,
    extrapolation_key,
    fit_key,
)


@pytest.fixture(autouse=True)
def _clean_global_caches():
    """Keep the process-global regions isolated between tests."""
    for cache in (FIT_CACHE, EXTRAPOLATION_CACHE):
        cache.clear()
        cache.stats.reset()
    yield
    for cache in (FIT_CACHE, EXTRAPOLATION_CACHE):
        cache.clear()
        cache.stats.reset()


class TestContentCache:
    def test_disabled_cache_is_transparent(self):
        cache = ContentCache("t", enabled=False)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or "v") == "v"
        assert cache.get_or_compute("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 2
        assert cache.stats.lookups == 0

    def test_hit_and_miss_counting(self):
        cache = ContentCache("t", enabled=True)
        assert cache.get_or_compute("k", lambda: 41) == 41
        assert cache.get_or_compute("k", lambda: 42) == 41
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_none_is_a_cacheable_value(self):
        cache = ContentCache("t", enabled=True)
        assert cache.get_or_compute("k", lambda: None) is None
        assert cache.get_or_compute("k", lambda: "other") is None
        assert cache.stats.hits == 1

    def test_valid_predicate_forces_recompute(self):
        cache = ContentCache("t", enabled=True)
        cache.get_or_compute("k", lambda: 10)
        value = cache.get_or_compute("k", lambda: 20, valid=lambda v: v >= 15)
        assert value == 20
        # The fresh value replaced the rejected entry.
        assert cache.get_or_compute("k", lambda: 30, valid=lambda v: v >= 15) == 20

    def test_eviction_bounds_entries(self):
        cache = ContentCache("t", enabled=True, max_entries=3)
        for i in range(10):
            cache.get_or_compute(i, lambda i=i: i)
        assert len(cache) == 3

    def test_digest_distinguishes_array_content(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 4.0])
        assert digest(a) != digest(b)
        assert digest(a) == digest(np.array([1.0, 2.0, 3.0]))


class TestFitCacheWiring:
    CORES = np.arange(1, 13, dtype=float)
    VALUES = 1e9 * (1.0 + 0.3 * CORES + 0.02 * CORES**2)

    def test_cached_fit_is_identical_object(self):
        with caches_enabled(True):
            first = fit_kernel(get_kernel("Rat22"), self.CORES, self.VALUES)
            second = fit_kernel(get_kernel("Rat22"), self.CORES, self.VALUES)
        assert first is second
        assert FIT_CACHE.stats.hits == 1
        assert FIT_CACHE.stats.misses == 1

    def test_cached_fit_equals_uncached_fit(self):
        plain = fit_kernel(get_kernel("Rat22"), self.CORES, self.VALUES)
        with caches_enabled(True):
            cached = fit_kernel(get_kernel("Rat22"), self.CORES, self.VALUES)
        assert cached.params == plain.params
        assert cached.train_rmse == plain.train_rmse

    def test_key_depends_on_kernel_and_content(self):
        key = fit_key("Rat22", self.CORES, self.VALUES, 600)
        assert key != fit_key("Rat23", self.CORES, self.VALUES, 600)
        assert key != fit_key("Rat22", self.CORES, self.VALUES * 2, 600)
        assert key != fit_key("Rat22", self.CORES, self.VALUES, 700)
        assert key == fit_key("Rat22", self.CORES.copy(), self.VALUES.copy(), 600)

    def test_disabled_by_default(self):
        fit_kernel(get_kernel("Rat22"), self.CORES, self.VALUES)
        assert FIT_CACHE.stats.lookups == 0


class TestExtrapolationCacheWiring:
    CORES = np.arange(1, 13)
    VALUES = 1e9 * (2.0 + 0.5 * np.arange(1, 13, dtype=float))
    CONFIG = EstimaConfig(kernel_names=("CubicLn", "Poly25"))

    def test_cached_result_reused_for_identical_call(self):
        with caches_enabled(True):
            first = extrapolate_series(
                self.CORES, self.VALUES, self.CONFIG, target_cores=48, category="c"
            )
            second = extrapolate_series(
                self.CORES, self.VALUES, self.CONFIG, target_cores=48, category="c"
            )
        assert second is first
        assert EXTRAPOLATION_CACHE.stats.hits == 1

    def test_different_target_is_a_different_entry(self):
        # The realism screen widens with the target, so the chosen fit is
        # target-dependent: distinct targets must never share an entry
        # (cached results are always bit-identical to recomputed ones).
        with caches_enabled(True):
            extrapolate_series(
                self.CORES, self.VALUES, self.CONFIG, target_cores=24, category="c"
            )
            extrapolate_series(
                self.CORES, self.VALUES, self.CONFIG, target_cores=96, category="c"
            )
        assert EXTRAPOLATION_CACHE.stats.misses == 2
        assert EXTRAPOLATION_CACHE.stats.hits == 0

    def test_cached_equals_uncached(self):
        plain = extrapolate_series(
            self.CORES, self.VALUES, self.CONFIG, target_cores=48, category="c"
        )
        with caches_enabled(True):
            cached = extrapolate_series(
                self.CORES, self.VALUES, self.CONFIG, target_cores=48, category="c"
            )
        assert cached.kernel_name == plain.kernel_name
        np.testing.assert_array_equal(
            cached.predict(np.arange(1, 49)), plain.predict(np.arange(1, 49))
        )

    def test_key_includes_numeric_config_fields(self):
        base = extrapolation_key(
            self.CORES, self.VALUES, self.CONFIG,
            target_cores=48, category="c", allow_negative=False,
        )
        other = extrapolation_key(
            self.CORES,
            self.VALUES,
            self.CONFIG.with_(checkpoints=4),
            target_cores=48,
            category="c",
            allow_negative=False,
        )
        assert base != other
        assert base != extrapolation_key(
            self.CORES, self.VALUES, self.CONFIG,
            target_cores=24, category="c", allow_negative=False,
        )
        # Engine knobs must not change the key: serial/parallel/cached runs share entries.
        same = extrapolation_key(
            self.CORES,
            self.VALUES,
            self.CONFIG.with_(executor="parallel", use_fit_cache=True),
            target_cores=48,
            category="c",
            allow_negative=False,
        )
        assert base == same

    def test_context_manager_restores_state(self):
        assert not FIT_CACHE.enabled
        with caches_enabled(True):
            assert FIT_CACHE.enabled and EXTRAPOLATION_CACHE.enabled
            with caches_enabled(False):
                assert not FIT_CACHE.enabled
            assert FIT_CACHE.enabled
        assert not FIT_CACHE.enabled
