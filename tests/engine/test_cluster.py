"""Tests for the cluster subsystem (`repro.engine.cluster`).

Pinned contracts:

* **placement** — the consistent-hash ring is a pure function: exact
  placements are frozen here, two instances always agree, and removing a
  node only moves the keys that node owned;
* **determinism** — campaign rows produced through `--executor remote:...`
  and through the `estima route` front-end are bit-identical to the serial
  single-host reference (`estima campaign --json`), including under an
  injected backend failure: rows appear exactly once, in order, with no
  duplicates or drops;
* **failover** — the backend pool retries the key's owner with exponential
  backoff, then fails over along the ring; hosts that exhaust their budget
  are marked down and deferred, and an error *document* never triggers
  failover (every replica would answer the same);
* **cache shipping** — `estima cache export` / `import` round-trips a
  warm store between hosts (schema-checked, digest-verified, optionally
  ring-filtered to one shard's slice), and a warm-started host re-fits
  zero kernels;
* **strict metrics** — `flatten_stats` raises on a non-numeric leaf
  instead of silently dropping it from `/metrics`.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.core import EstimaConfig, EstimaPredictor
from repro.engine.cluster.archive import (
    ARCHIVE_SCHEMA_VERSION,
    export_store,
    import_archive,
)
from repro.engine.cluster.remote import (
    BackendPool,
    RemoteExecutor,
    RemoteUnavailableError,
    parse_backends,
    parse_remote_retries,
    parse_remote_timeout,
    remote_executor_from_spec,
)
from repro.engine.cluster.ring import DEFAULT_VNODES, HashRing
from repro.engine.cluster.router import Router, _canonical_key, serve_route
from repro.engine.executor import get_executor, parse_executor_spec
from repro.engine.gateway import flatten_stats
from repro.engine.pool import parse_idle_timeout
from repro.engine.server import PredictionServer, serve_tcp
from repro.engine.store import store_for

CAMPAIGN_CORE_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20]
CAMPAIGN_TARGETS = {"half": 16, "full": 20}
CAMPAIGN_WORKLOADS = ["genome", "blackscholes"]

PINNED_NODES = ("10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070")


@pytest.fixture(autouse=True)
def _no_estima_env(monkeypatch):
    """Cluster behaviour under test must come from the test, not the shell."""
    import os

    for name in list(os.environ):
        if name.startswith("ESTIMA_"):
            monkeypatch.delenv(name)


def _free_port() -> int:
    """A port that was just free — connecting to it is refused, fast."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _batch_campaign_reference(workloads: list[str]) -> dict:
    """The single-host serial reference: `estima campaign --json` in-process."""
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(
            [
                "campaign",
                "--machine", "xeon20",
                "--measure-cores", "10",
                "--workloads", ",".join(workloads),
                "--core-counts", ",".join(str(c) for c in CAMPAIGN_CORE_COUNTS),
                "--targets", "half=16,full=20",
                "--json",
            ]
        )
    assert code == 0
    return json.loads(stdout.getvalue())


@pytest.fixture(scope="module")
def batch():
    return _batch_campaign_reference(CAMPAIGN_WORKLOADS)


@pytest.fixture(scope="module")
def measured(xeon20_simulator):
    from repro.workloads import get_workload

    sweep = xeon20_simulator.sweep(
        get_workload("genome"), core_counts=[1, 2, 3, 4, 6, 8, 10]
    )
    return sweep.restrict_to(10)


# --------------------------------------------------------------------------- #
# In-process server harnesses (asyncio loop on a background thread)
# --------------------------------------------------------------------------- #


class _AsyncServer:
    """Run one asyncio serve coroutine on a background thread."""

    def __init__(self, serve_coro_factory, on_stopped=None) -> None:
        self._factory = serve_coro_factory
        self._on_stopped = on_stopped
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            task = self._loop.create_task(
                self._factory(
                    lambda addr: (setattr(self, "address", addr), self._ready.set())
                )
            )
            await self._stop.wait()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            if self._on_stopped is not None:
                await self._on_stopped()

        asyncio.run(body())

    def __enter__(self) -> "_AsyncServer":
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not come up"
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _tcp_backend(server: PredictionServer) -> _AsyncServer:
    return _AsyncServer(
        lambda on_listening: serve_tcp(server, "127.0.0.1", 0, on_listening=on_listening),
        on_stopped=server.stop,
    )


class _RouterServer(_AsyncServer):
    def __init__(self, router: Router) -> None:
        super().__init__(
            lambda on_listening: serve_route(
                router, "127.0.0.1", 0, on_listening=on_listening
            )
        )
        self.router = router

    def __exit__(self, *exc_info) -> None:
        super().__exit__(*exc_info)
        self.router.close()


def _http_request(address, method, path, body=None, timeout=600):
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Hash ring
# --------------------------------------------------------------------------- #


class TestHashRing:
    def test_pinned_placement(self):
        """Exact placements are part of the protocol: shipped shard slices
        and router sharding must agree across versions and machines."""
        ring = HashRing(PINNED_NODES)
        assert ring.node_for("deadbeef") == "10.0.0.3:7070"
        assert ring.nodes_for("genome") == (
            "10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070",
        )
        assert ring.nodes_for("intruder") == (
            "10.0.0.2:7070", "10.0.0.3:7070", "10.0.0.1:7070",
        )
        assert ring.nodes_for("alpha") == (
            "10.0.0.3:7070", "10.0.0.2:7070", "10.0.0.1:7070",
        )

    def test_deterministic_across_instances(self):
        a = HashRing(PINNED_NODES)
        b = HashRing(list(PINNED_NODES))
        keys = [f"key-{i}" for i in range(64)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]
        assert [a.nodes_for(k) for k in keys] == [b.nodes_for(k) for k in keys]

    def test_consistency_on_node_removal(self):
        """Removing a node only moves the keys that node owned."""
        full = HashRing(PINNED_NODES)
        removed = PINNED_NODES[1]
        reduced = HashRing([n for n in PINNED_NODES if n != removed])
        for i in range(200):
            key = f"key-{i}"
            owner = full.node_for(key)
            if owner != removed:
                assert reduced.node_for(key) == owner, key

    def test_failover_order_covers_all_nodes_once(self):
        ring = HashRing(PINNED_NODES)
        for i in range(50):
            order = ring.nodes_for(f"key-{i}")
            assert sorted(order) == sorted(PINNED_NODES)
            assert order[0] == ring.node_for(f"key-{i}")

    def test_distribution_touches_every_node(self):
        ring = HashRing(PINNED_NODES)
        owners = {ring.node_for(f"key-{i}") for i in range(200)}
        assert owners == set(PINNED_NODES)

    def test_vnodes_shape_and_len(self):
        ring = HashRing(PINNED_NODES, vnodes=8)
        assert len(ring) == 3
        assert set(iter(ring)) == set(PINNED_NODES)
        assert "vnodes=8" in repr(ring)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a:1", "a:1"])
        with pytest.raises(ValueError):
            HashRing(["a:1"], vnodes=0)


# --------------------------------------------------------------------------- #
# Spec / config parsing
# --------------------------------------------------------------------------- #


class TestParsing:
    def test_parse_backends_normalises(self):
        assert parse_backends(" 10.0.0.1:7070 , 10.0.0.2:7071 ") == (
            "10.0.0.1:7070", "10.0.0.2:7071",
        )

    def test_parse_backends_rejects(self):
        for bad in ("", " , ", "nonsense", "host:0", "a:1,a:1", "host:notaport"):
            with pytest.raises(ValueError):
                parse_backends(bad)
        with pytest.raises(ValueError, match="port 0"):
            parse_backends("host:0")

    def test_parse_remote_timeout_and_retries(self):
        assert parse_remote_timeout("2.5") == 2.5
        assert parse_remote_retries("0") == 0
        for bad in ("0", "-1", "soon"):
            with pytest.raises(ValueError):
                parse_remote_timeout(bad)
        for bad in ("-1", "few"):
            with pytest.raises(ValueError):
                parse_remote_retries(bad)

    def test_parse_idle_timeout(self):
        assert parse_idle_timeout("1.5") == 1.5
        assert parse_idle_timeout(0) == 0.0
        for bad in ("-1", "nan", "soon"):
            with pytest.raises(ValueError):
                parse_idle_timeout(bad)

    def test_executor_spec_remote(self):
        assert parse_executor_spec("remote:127.0.0.1:7070") == ("remote", None)
        assert parse_executor_spec("remote:a:1,b:2") == ("remote", None)
        with pytest.raises(ValueError, match="backend list"):
            parse_executor_spec("remote")
        with pytest.raises(ValueError, match="remote"):
            parse_executor_spec("bogus")
        with pytest.raises(ValueError):
            parse_executor_spec("remote:host:0")

    def test_get_executor_builds_remote(self):
        executor = get_executor("remote:127.0.0.1:7070")
        try:
            assert isinstance(executor, RemoteExecutor)
            assert executor.name == "remote"
            assert executor.requires_pickling
            assert executor.pool.backends == ("127.0.0.1:7070",)
        finally:
            executor.close()

    def test_remote_executor_from_spec_rejects_non_remote(self):
        with pytest.raises(ValueError):
            remote_executor_from_spec("serial")

    def test_config_field_validation(self):
        with pytest.raises(ValueError, match="route_backends"):
            EstimaConfig(route_backends="nonsense")
        with pytest.raises(ValueError, match="remote_timeout"):
            EstimaConfig(remote_timeout=0)
        with pytest.raises(ValueError, match="remote_retries"):
            EstimaConfig(remote_retries=-1)
        with pytest.raises(ValueError, match="serve_idle_timeout"):
            EstimaConfig(serve_idle_timeout=-2)
        config = EstimaConfig(
            route_backends="10.0.0.1:7070,10.0.0.2:7070",
            remote_timeout=5.0,
            remote_retries=0,
            serve_idle_timeout=30.0,
        )
        assert config.route_backends == "10.0.0.1:7070,10.0.0.2:7070"

    @pytest.mark.parametrize(
        "name, value",
        [
            ("ESTIMA_ROUTE_BACKENDS", "nonsense"),
            ("ESTIMA_REMOTE_TIMEOUT", "0"),
            ("ESTIMA_REMOTE_RETRIES", "-1"),
            ("ESTIMA_SERVE_IDLE_TIMEOUT", "-5"),
        ],
    )
    def test_env_validation_at_config_construction(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ValueError, match=name):
            EstimaConfig()


# --------------------------------------------------------------------------- #
# Strict /metrics flattening (satellite)
# --------------------------------------------------------------------------- #


class TestFlattenStatsStrict:
    def test_numeric_and_bool_leaves_flatten(self):
        gauges = flatten_stats({"a": {"up": True, "n": 2, "x": 1.5}})
        assert gauges == {"estima_a_up": 1.0, "estima_a_n": 2.0, "estima_a_x": 1.5}

    @pytest.mark.parametrize("leaf", ["oops", None, ["list"], ("tuple",)])
    def test_non_numeric_leaf_raises_with_path(self, leaf):
        with pytest.raises(ValueError, match="estima_outer_inner"):
            flatten_stats({"outer": {"inner": leaf}})


# --------------------------------------------------------------------------- #
# Backend pool: retries, failover, health
# --------------------------------------------------------------------------- #


class _ScriptedBackend(threading.Thread):
    """Minimal NDJSON backend whose behaviour per request is a function.

    ``script(document) -> list[dict] | None``: the response documents to
    write, or ``None`` to drop the connection without answering (a
    transport failure from the client's point of view).
    """

    def __init__(self, script) -> None:
        super().__init__(daemon=True)
        self._script = script
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._closing = threading.Event()

    def run(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                stream = conn.makefile("rwb")
                for raw in stream:
                    responses = self._script(json.loads(raw))
                    if responses is None:
                        break  # drop the connection mid-request
                    for document in responses:
                        stream.write(json.dumps(document).encode() + b"\n")
                    stream.flush()
            except (OSError, ValueError):
                pass
            finally:
                conn.close()

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass


def _key_owned_by(pool: BackendPool, address: str) -> str:
    """Some key the given backend owns (the ring is uniform; 100 tries ample)."""
    for i in range(100):
        key = f"probe-key-{i}"
        if pool.ring.node_for(key) == address:
            return key
    raise AssertionError(f"no probe key owned by {address}")


class TestBackendPool:
    def test_failover_after_owner_death(self):
        """The owner's budget is exhausted (with backoff), then the next
        ring node serves the request; the dead host is marked down."""
        alive = _ScriptedBackend(lambda doc: [{"id": doc.get("id"), "ok": True, "echo": 1}])
        alive.start()
        dead_address = f"127.0.0.1:{_free_port()}"
        sleeps: list[float] = []
        pool = BackendPool(
            [dead_address, alive.address],
            retries=2,
            backoff_base_s=0.001,
            sleep=sleeps.append,
        )
        try:
            key = _key_owned_by(pool, dead_address)
            documents = pool.request(key, {"id": 41})
            assert documents == [{"id": 41, "ok": True, "echo": 1}]
            # 1 + retries attempts on the dead owner, exponential backoff.
            assert sleeps == [0.001, 0.002]
            stats = pool.stats()
            assert stats["routed_requests"] == 1
            assert stats["failovers"] == 1
            assert stats["backends_up"] == 1
            assert stats["per_backend"][dead_address]["up"] is False
            assert stats["per_backend"][dead_address]["retries"] == 2
            assert stats["per_backend"][alive.address]["up"] is True
            assert not pool.host_up(dead_address)
        finally:
            pool.close()
            alive.close()

    def test_down_host_deferred_then_healed_by_probe(self):
        alive = _ScriptedBackend(lambda doc: [{"id": doc.get("id"), "ok": True}])
        alive.start()
        dead_address = f"127.0.0.1:{_free_port()}"
        pool = BackendPool(
            [dead_address, alive.address], retries=0, backoff_base_s=0.0,
            sleep=lambda s: None,
        )
        try:
            key = _key_owned_by(pool, dead_address)
            pool.request(key, {"id": 1})
            assert not pool.host_up(dead_address)
            # Down hosts are deferred: the same key now goes straight to the
            # live host, with no additional failover hop counted.
            before = pool.stats()["failovers"]
            pool.request(key, {"id": 2})
            assert pool.stats()["failovers"] == before
            pool.mark_probe(dead_address, up=True)
            assert pool.host_up(dead_address)
        finally:
            pool.close()
            alive.close()

    def test_error_document_does_not_fail_over(self):
        """A server-*reported* error is deterministic across replicas: the
        pool returns it instead of hammering the other backends."""
        def error_script(doc):
            return [{"id": doc.get("id"), "ok": False, "error": "boom", "error_kind": "request"}]

        erroring = _ScriptedBackend(error_script)
        erroring.start()
        healthy = _ScriptedBackend(lambda doc: [{"id": doc.get("id"), "ok": True}])
        healthy.start()
        pool = BackendPool([erroring.address, healthy.address], retries=0)
        try:
            key = _key_owned_by(pool, erroring.address)
            [document] = pool.request(key, {"id": 7})
            assert document["ok"] is False and document["error"] == "boom"
            assert pool.stats()["failovers"] == 0
            assert pool.host_up(erroring.address)  # transport-healthy
        finally:
            pool.close()
            erroring.close()
            healthy.close()

    def test_all_backends_exhausted_raises(self):
        pool = BackendPool(
            [f"127.0.0.1:{_free_port()}", f"127.0.0.1:{_free_port()}"],
            retries=0, backoff_base_s=0.0, sleep=lambda s: None,
        )
        try:
            with pytest.raises(RemoteUnavailableError, match="2 backend"):
                pool.request("any-key", {"id": 1})
        finally:
            pool.close()

    def test_streamed_campaign_exchange_is_buffered_whole(self):
        """One campaign exchange returns row docs plus the final document —
        the unit of failover the router relies on for exactly-once rows."""
        def campaign_script(doc):
            return [
                {"id": doc.get("id"), "ok": True, "op": "campaign", "row": {"workload": "w"}},
                {"id": doc.get("id"), "ok": True, "op": "campaign", "done": True, "rows": 1},
            ]

        backend = _ScriptedBackend(campaign_script)
        backend.start()
        pool = BackendPool([backend.address])
        try:
            documents = pool.request("k", {"id": 3, "op": "campaign"})
            assert len(documents) == 2
            assert documents[0]["row"] == {"workload": "w"}
            assert documents[1]["done"] is True
        finally:
            pool.close()
            backend.close()


# --------------------------------------------------------------------------- #
# Idle timeout (satellite)
# --------------------------------------------------------------------------- #


class TestIdleTimeout:
    def test_resolution_kwarg_config_env(self, monkeypatch):
        assert PredictionServer(EstimaConfig()).idle_timeout is None
        assert PredictionServer(EstimaConfig(), idle_timeout=1.5).idle_timeout == 1.5
        assert PredictionServer(EstimaConfig(), idle_timeout=0).idle_timeout is None
        assert (
            PredictionServer(EstimaConfig(serve_idle_timeout=2.5)).idle_timeout == 2.5
        )
        monkeypatch.setenv("ESTIMA_SERVE_IDLE_TIMEOUT", "3.5")
        assert PredictionServer(EstimaConfig()).idle_timeout == 3.5
        # Explicit settings beat the environment.
        assert PredictionServer(EstimaConfig(), idle_timeout=1.0).idle_timeout == 1.0

    def test_server_closes_idle_connection(self):
        server = PredictionServer(EstimaConfig(), idle_timeout=0.2)
        with _tcp_backend(server) as tcp:
            sock = socket.create_connection(tcp.address, timeout=30)
            try:
                sock.settimeout(30)
                assert sock.recv(1) == b""  # server closed the idle stream
            finally:
                sock.close()

    def test_connection_with_inflight_work_survives_idle_timeout(self):
        """The timeout is for *idle* connections: one waiting on a slow
        campaign must not be cut while responses are still owed."""
        server = PredictionServer(EstimaConfig(), idle_timeout=0.3)
        with _tcp_backend(server) as tcp:
            sock = socket.create_connection(tcp.address, timeout=600)
            try:
                stream = sock.makefile("rwb")
                request = {
                    "id": "slow", "op": "campaign", "machine": "xeon20",
                    "measure_cores": 10, "targets": CAMPAIGN_TARGETS,
                    "workloads": ["genome"], "core_counts": CAMPAIGN_CORE_COUNTS,
                }
                stream.write(json.dumps(request).encode() + b"\n")
                stream.flush()
                documents = []
                for raw in stream:
                    documents.append(json.loads(raw))
                    if documents[-1].get("done") or not documents[-1].get("ok"):
                        break
                assert documents[-1]["ok"] and documents[-1]["done"]
            finally:
                sock.close()

    def test_gateway_counts_idle_closes(self):
        from repro.engine.gateway import HttpGateway, serve_http

        gateway = HttpGateway(PredictionServer(EstimaConfig()), idle_timeout=0.2)
        harness = _AsyncServer(
            lambda on_listening: serve_http(
                gateway, "127.0.0.1", 0, on_listening=on_listening
            ),
            on_stopped=gateway.server.stop,
        )
        with harness:
            sock = socket.create_connection(harness.address, timeout=30)
            try:
                sock.settimeout(30)
                assert sock.recv(1) == b""
            finally:
                sock.close()
        assert gateway.stats()["http"]["requests_by_route"]["idle_timeout"] == 1


# --------------------------------------------------------------------------- #
# RemoteExecutor: bit-identity and local fallback
# --------------------------------------------------------------------------- #


def _summary_without_engine(summary: dict) -> dict:
    return {k: v for k, v in summary.items() if k != "engine"}


def _run_campaign_cli(extra_args: list[str]) -> dict:
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(
            [
                "campaign",
                "--machine", "xeon20",
                "--measure-cores", "10",
                "--workloads", ",".join(CAMPAIGN_WORKLOADS),
                "--core-counts", ",".join(str(c) for c in CAMPAIGN_CORE_COUNTS),
                "--targets", "half=16,full=20",
                "--json",
                *extra_args,
            ]
        )
    assert code == 0
    return json.loads(stdout.getvalue())


class TestRemoteExecutor:
    def test_campaign_rows_bit_identical_to_serial(self, batch):
        """Acceptance pin: offloaded campaign == serial reference, and every
        task actually travelled to the backend."""
        server = PredictionServer(EstimaConfig())
        with _tcp_backend(server) as tcp:
            address = "%s:%d" % tcp.address
            remote = _run_campaign_cli(["--executor", f"remote:{address}"])
        assert _summary_without_engine(remote) == _summary_without_engine(batch)
        stats = remote["engine"]["executor_stats"]
        assert stats["backend"] == "remote"
        assert stats["remote_tasks"] == len(CAMPAIGN_WORKLOADS)
        assert stats["local_tasks"] == 0
        assert stats["fell_back"] is False
        assert stats["cluster"]["routed_requests"] == len(CAMPAIGN_WORKLOADS)

    def test_dead_backends_fall_back_locally_bit_identical(self, batch):
        """Cluster trouble never changes results: every task recomputes
        locally (with a warning) and rows stay bit-identical."""
        dead = f"127.0.0.1:{_free_port()}"
        with pytest.warns(RuntimeWarning, match="falling back to local"):
            fallback = _run_campaign_cli(
                ["--executor", f"remote:{dead}"]
            )
        assert _summary_without_engine(fallback) == _summary_without_engine(batch)
        stats = fallback["engine"]["executor_stats"]
        assert stats["fell_back"] is True
        assert stats["local_tasks"] == len(CAMPAIGN_WORKLOADS)
        assert stats["remote_tasks"] == 0

    def test_unregistered_function_runs_locally_without_network(self):
        executor = RemoteExecutor([f"127.0.0.1:{_free_port()}"], retries=0)
        try:
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert list(executor.imap(_double, [4])) == [8]
            stats = executor.stats()
            assert stats["local_tasks"] == 4
            assert stats["remote_tasks"] == 0
            assert stats["fell_back"] is False  # never even tried the wire
            assert stats["cluster"]["routed_requests"] == 0
        finally:
            executor.close()


def _double(x):
    return 2 * x


# --------------------------------------------------------------------------- #
# Router: sharded HTTP front-end
# --------------------------------------------------------------------------- #


def _campaign_http_request(request_id, workloads=None):
    return {
        "id": request_id,
        "machine": "xeon20",
        "measure_cores": 10,
        "targets": CAMPAIGN_TARGETS,
        "workloads": workloads or CAMPAIGN_WORKLOADS,
        "core_counts": CAMPAIGN_CORE_COUNTS,
    }


def _read_campaign_stream(address, payload):
    conn = http.client.HTTPConnection(*address, timeout=600)
    try:
        conn.request("POST", "/v1/campaign", body=json.dumps(payload))
        response = conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), [
            json.loads(line) for line in body.decode().strip().splitlines()
        ]
    finally:
        conn.close()


class TestRouter:
    def test_predict_and_campaign_bit_identical_to_single_host(
        self, measured, batch
    ):
        """The ISSUE's acceptance pin: routed responses == single-host
        serving, both built from the same runner/io helpers."""
        backend_a = PredictionServer(EstimaConfig())
        backend_b = PredictionServer(EstimaConfig())
        with _tcp_backend(backend_a) as a, _tcp_backend(backend_b) as b:
            router = Router(["%s:%d" % a.address, "%s:%d" % b.address], timeout=600.0)
            with _RouterServer(router) as routed:
                # --- predict: compare with the per-request predictor -------
                payload = {
                    "id": "p0", "target_cores": 20, "measurements": measured.to_dict(),
                }
                status, _, body = _http_request(
                    routed.address, "POST", "/v1/predict", payload
                )
                assert status == 200
                document = json.loads(body)
                direct = EstimaPredictor(EstimaConfig()).predict(
                    measured, target_cores=20
                )
                assert document["ok"] and document["id"] == "p0"
                assert document["result"]["predicted_times_s"] == [
                    float(t) for t in direct.predicted_times
                ]

                # --- predict_batch: order preserved, multi-status ----------
                status, _, body = _http_request(
                    routed.address, "POST", "/v1/predict_batch",
                    {"requests": [payload | {"id": "b0"}, {"id": "bad", "target_cores": 4}]},
                )
                assert status == 200
                document = json.loads(body)
                assert [r["id"] for r in document["responses"]] == ["b0", "bad"]
                assert [r["ok"] for r in document["responses"]] == [True, False]
                assert document["ok"] is False

                # --- campaign: sharded rows == `estima campaign --json` ----
                status, headers, documents = _read_campaign_stream(
                    routed.address, _campaign_http_request("c0")
                )
                assert status == 200
                assert headers.get("Content-Type") == "application/x-ndjson"
                *rows, final = documents
                assert final["ok"] and final["done"]
                assert final["rows"] == len(CAMPAIGN_WORKLOADS)
                assert [r["row"]["workload"] for r in rows] == CAMPAIGN_WORKLOADS
                for streamed, batch_row in zip(rows, batch["rows"]):
                    assert json.dumps(streamed["row"], sort_keys=True) == json.dumps(
                        batch_row, sort_keys=True
                    )
                summary = final["summary"]
                assert json.dumps(
                    _summary_without_engine(summary), sort_keys=True
                ) == json.dumps(_summary_without_engine(batch), sort_keys=True)
                assert summary["engine"]["executor"] == "route"
                assert summary["engine"]["workloads"] == len(CAMPAIGN_WORKLOADS)

                # Both backends actually carried traffic for this test to
                # mean anything; campaign sub-requests shard by digest.
                cluster = summary["engine"]["cluster"]
                assert cluster["routed_requests"] >= len(CAMPAIGN_WORKLOADS)

                # --- healthz / metrics aggregation -------------------------
                status, _, body = _http_request(routed.address, "GET", "/healthz")
                health = json.loads(body)
                assert status == 200 and health["ok"]
                assert set(health["backends"]) == set(router.pool.backends)
                assert all(health["backends"].values())

                status, _, body = _http_request(routed.address, "GET", "/metrics")
                assert status == 200
                parsed = {}
                for line in body.decode().splitlines():
                    if line and not line.startswith("#"):
                        name, value = line.rsplit(" ", 1)
                        parsed[name] = float(value)
                snapshot = flatten_stats(router.stats())
                assert set(parsed) == set(snapshot)
                for name, value in snapshot.items():
                    assert parsed[name] == value, name
                assert parsed["estima_cluster_backends_up"] == 2.0
                assert parsed["estima_router_requests_by_route_get_metrics"] == 1.0

    def test_error_statuses_and_validation(self):
        backend = PredictionServer(EstimaConfig())
        with _tcp_backend(backend) as b:
            router = Router(["%s:%d" % b.address], max_body_bytes=4096, timeout=600.0)
            with _RouterServer(router) as routed:
                status, _, body = _http_request(routed.address, "GET", "/nope")
                assert status == 404 and not json.loads(body)["ok"]
                status, headers, _ = _http_request(routed.address, "GET", "/v1/predict")
                assert status == 405 and "POST" in headers.get("Allow", "")
                status, _, body = _http_request(
                    routed.address, "POST", "/v1/predict",
                    {"id": 1, "op": "campaign"}, timeout=60,
                )
                assert status == 400 and "/v1/campaign" in json.loads(body)["error"]
                # Invalid campaigns are rejected with a real 400 before any
                # chunk is streamed (the gateway's contract).
                status, headers, body = _http_request(
                    routed.address, "POST", "/v1/campaign",
                    {"id": "x", "machine": "not-a-machine"}, timeout=60,
                )
                assert status == 400
                assert headers.get("Transfer-Encoding") != "chunked"
                assert not json.loads(body)["ok"]
                status, _, body = _http_request(
                    routed.address, "POST", "/v1/predict",
                    {"id": 1, "padding": "x" * 8192}, timeout=60,
                )
                assert status == 413

    def test_all_backends_down_healthz_503_predict_503(self, measured):
        router = Router(
            [f"127.0.0.1:{_free_port()}", f"127.0.0.1:{_free_port()}"],
            retries=0, timeout=5.0,
        )
        with _RouterServer(router) as routed:
            status, _, body = _http_request(routed.address, "GET", "/healthz", timeout=60)
            health = json.loads(body)
            assert status == 503 and not health["ok"]
            assert not any(health["backends"].values())
            status, _, body = _http_request(
                routed.address, "POST", "/v1/predict",
                {"id": 1, "target_cores": 20, "measurements": measured.to_dict()},
            )
            assert status == 503
            document = json.loads(body)
            assert document["error_kind"] == "unavailable"
            assert "no backend available" in document["error"]


class _DyingProxy(threading.Thread):
    """Protocol-aware NDJSON proxy that dies after N whole exchanges.

    Relays complete request/response exchanges to an upstream backend,
    serving connections strictly one at a time; once the exchange budget is
    spent it closes its listener and every socket.  Clients queued behind it
    see a clean transport failure *before any response byte*, which is
    exactly the failover-safe shape the pool retries.
    """

    def __init__(self, upstream: tuple[str, int], exchanges: int) -> None:
        super().__init__(daemon=True)
        self._upstream = upstream
        self._budget = exchanges
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self.served = 0

    def run(self) -> None:
        while self.served < self._budget:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                client = conn.makefile("rwb")
                while self.served < self._budget:
                    raw = client.readline()
                    if not raw:
                        break
                    with socket.create_connection(self._upstream, timeout=600) as up:
                        up_stream = up.makefile("rwb")
                        up_stream.write(raw)
                        up_stream.flush()
                        for response in up_stream:
                            client.write(response)
                            client.flush()
                            document = json.loads(response)
                            if "done" in document or document.get("ok") is False:
                                break
                    self.served += 1
            except (OSError, ValueError):
                pass
            finally:
                conn.close()
        self._listener.close()

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


class TestRouterFailover:
    def test_backend_dies_mid_campaign_rows_exactly_once(self):
        """Satellite pin: a backend that dies mid-campaign costs nothing but
        a failover — every row still arrives exactly once, in order, bit-
        identical to the single-host reference."""
        backend = PredictionServer(EstimaConfig())
        with _tcp_backend(backend) as live:
            live_address = "%s:%d" % live.address
            proxy = _DyingProxy(live.address, exchanges=1)
            proxy.start()
            router = Router([proxy.address, live_address], retries=0, timeout=600.0)

            # Choose workloads by their actual shard placement so the dying
            # backend is guaranteed traffic: the sub-request key below is the
            # same construction `Router._run_sharded_campaign` uses.
            from repro.workloads import WORKLOADS

            preferred = ["genome", "blackscholes", "kmeans", "ssca2", "labyrinth"]
            candidates = preferred + sorted(set(WORKLOADS) - set(preferred))

            def owner_of(workload: str) -> str:
                sub = dict(_campaign_http_request(None, workloads=[workload]))
                del sub["id"]
                sub["op"] = "campaign"
                sub["executor"] = "serial"
                return router.pool.ring.node_for(_canonical_key("route-campaign", sub))

            proxy_owned = [w for w in candidates if owner_of(w) == proxy.address]
            live_owned = [w for w in candidates if owner_of(w) == live_address]
            assert len(proxy_owned) >= 2 and len(live_owned) >= 1, (
                proxy_owned, live_owned,
            )
            workloads = [proxy_owned[0], live_owned[0], proxy_owned[1]]

            try:
                with _RouterServer(router) as routed:
                    status, _, documents = _read_campaign_stream(
                        routed.address, _campaign_http_request("f0", workloads=workloads)
                    )
            finally:
                proxy.close()

        assert status == 200
        *rows, final = documents
        assert final["ok"] and final["done"] and final["rows"] == len(workloads)
        # Exactly once, in campaign order: any drop, duplicate or reorder
        # breaks this equality.
        assert [r["row"]["workload"] for r in rows] == workloads

        # Bit-identity against the single-host serial reference.
        reference = _batch_campaign_reference(workloads)
        for streamed, batch_row in zip(rows, reference["rows"]):
            assert json.dumps(streamed["row"], sort_keys=True) == json.dumps(
                batch_row, sort_keys=True
            )
        summary = final["summary"]
        assert json.dumps(
            _summary_without_engine(summary), sort_keys=True
        ) == json.dumps(_summary_without_engine(reference), sort_keys=True)

        # The death was observed: at least one shard failed over to the
        # survivor, and the dead backend ended the campaign marked down.
        cluster = summary["engine"]["cluster"]
        assert cluster["failovers"] >= 1
        assert cluster["per_backend"][proxy.address]["up"] is False
        assert cluster["per_backend"][live_address]["up"] is True
        # At most one exchange went through the proxy before it died.
        assert proxy.served <= 1


# --------------------------------------------------------------------------- #
# Cache shipping (export / import)
# --------------------------------------------------------------------------- #


class TestArchive:
    @staticmethod
    def _seed_store(root) -> tuple:
        store = store_for(root)
        entries = {}
        for region in ("fit", "extrapolation"):
            for i in range(6):
                key = f"{region}key{i:02d}" * 4  # store keys are digest-like
                value = {"region": region, "i": i, "curve": [float(i), 2.0 * i]}
                assert store.put(region, key, value)
                entries[(region, key)] = value
        return store, entries

    def test_round_trip_all_entries(self, tmp_path):
        store, entries = self._seed_store(tmp_path / "host_a")
        archive = tmp_path / "warm.tar.gz"
        summary = export_store(store, archive)
        assert summary["entries"] == len(entries)
        assert summary["skipped"] == 0
        assert summary["archive_schema"] == ARCHIVE_SCHEMA_VERSION

        target = store_for(tmp_path / "host_b")
        result = import_archive(archive, target)
        assert result["imported"] == len(entries)
        assert result["skipped_invalid"] == 0 and result["skipped_other_shard"] == 0
        for (region, key), value in entries.items():
            assert target.get(region, key) == value

    def test_region_filtered_export(self, tmp_path):
        store, entries = self._seed_store(tmp_path / "host_a")
        archive = tmp_path / "fits-only.tar.gz"
        summary = export_store(store, archive, regions=["fit"])
        assert summary["regions"] == {"fit": 6}
        target = store_for(tmp_path / "host_b")
        result = import_archive(archive, target)
        assert result["regions"] == {"fit": 6}

    def test_ring_filtered_import_partitions_exactly(self, tmp_path):
        """Each shard imports exactly its ring slice; the slices partition
        the archive (no overlap, no gaps) and agree with the pure ring."""
        store, entries = self._seed_store(tmp_path / "host_a")
        archive = tmp_path / "warm.tar.gz"
        export_store(store, archive)
        ring = HashRing(PINNED_NODES)
        imported_by_node = {}
        for node in PINNED_NODES:
            target = store_for(tmp_path / f"shard_{node.replace(':', '_')}")
            result = import_archive(archive, target, ring=ring, node=node)
            assert result["imported"] + result["skipped_other_shard"] == len(entries)
            owned = {
                (region, key)
                for (region, key) in entries
                if ring.node_for(key) == node
            }
            for region, key in owned:
                assert target.get(region, key) == entries[(region, key)]
            imported_by_node[node] = result["imported"]
        assert sum(imported_by_node.values()) == len(entries)

    def test_ring_filter_validation(self, tmp_path):
        store, _ = self._seed_store(tmp_path / "host_a")
        archive = tmp_path / "warm.tar.gz"
        export_store(store, archive)
        target = store_for(tmp_path / "host_b")
        ring = HashRing(PINNED_NODES)
        with pytest.raises(ValueError, match="both a ring and a node"):
            import_archive(archive, target, ring=ring)
        with pytest.raises(ValueError, match="both a ring and a node"):
            import_archive(archive, target, node=PINNED_NODES[0])
        with pytest.raises(ValueError, match="not on the ring"):
            import_archive(archive, target, ring=ring, node="other:1")

    def test_schema_mismatch_refused(self, tmp_path):
        import tarfile as tarfile_mod

        archive = tmp_path / "stale.tar.gz"
        manifest = json.dumps(
            {"archive_schema": 99, "store_schema": 1, "entries": 0, "regions": {}}
        ).encode()
        with tarfile_mod.open(archive, "w:gz") as tar:
            import io as io_mod

            info = tarfile_mod.TarInfo(name="manifest.json")
            info.size = len(manifest)
            tar.addfile(info, io_mod.BytesIO(manifest))
        with pytest.raises(ValueError, match="archive schema"):
            import_archive(archive, store_for(tmp_path / "host_b"))
        with pytest.raises(ValueError, match="not a cache archive"):
            import_archive(tmp_path / "missing.tar.gz", store_for(tmp_path / "b2"))

    def test_tampered_entry_skipped(self, tmp_path):
        """A member whose embedded digest does not match its path is counted
        and skipped — never stored under the wrong key."""
        import tarfile as tarfile_mod

        store, entries = self._seed_store(tmp_path / "host_a")
        archive = tmp_path / "warm.tar.gz"
        export_store(store, archive)
        tampered = tmp_path / "tampered.tar.gz"
        import io as io_mod

        with tarfile_mod.open(archive, "r:gz") as src, tarfile_mod.open(
            tampered, "w:gz"
        ) as dst:
            renamed = 0
            for member in src:
                blob = src.extractfile(member).read()
                if not renamed and member.name.startswith("fit/"):
                    # Same payload under a different key: the embedded
                    # digest no longer matches the member's path.
                    member.name = "fit/" + "f" * 32 + ".entry"
                    renamed = 1
                member.size = len(blob)
                dst.addfile(member, io_mod.BytesIO(blob))
        target = store_for(tmp_path / "host_b")
        result = import_archive(tampered, target)
        assert result["skipped_invalid"] == 1
        assert result["imported"] == len(entries) - 1

    def test_warm_restart_refits_zero_kernels(self, tmp_path):
        """Satellite pin: export host A's fit cache, import on host B — a
        cold process on B re-fits zero kernels (every fit is a disk hit)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent.parent / "src"
        env = {
            k: v for k, v in os.environ.items() if not k.startswith("ESTIMA_")
        }
        env["PYTHONPATH"] = str(src)
        host_a = tmp_path / "host_a_cache"
        host_b = tmp_path / "host_b_cache"

        def run_campaign(cache_dir: Path) -> dict:
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "campaign",
                    "--machine", "xeon20",
                    "--measure-cores", "10",
                    "--workloads", "genome",
                    "--core-counts", ",".join(str(c) for c in CAMPAIGN_CORE_COUNTS),
                    "--targets", "half=16,full=20",
                    "--fit-cache", "--cache-dir", str(cache_dir),
                    "--json",
                ],
                capture_output=True, text=True, env=env, timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        cold = run_campaign(host_a)
        cold_fit = cold["engine"]["caches"]["fit"]
        assert cold_fit["disk_misses"] > 0  # host A actually fitted kernels

        archive = tmp_path / "warm-fits.tar.gz"
        export_store(store_for(host_a), archive)
        import_archive(archive, store_for(host_b))

        warm = run_campaign(host_b)
        warm_caches = warm["engine"]["caches"]
        # Zero recomputation in either region: the shipped extrapolation
        # entries hit first (short-circuiting the fit stage entirely), so
        # the hits land there while both regions' miss counters stay zero.
        assert warm_caches["fit"]["disk_misses"] == 0  # zero kernels re-fitted
        assert warm_caches["extrapolation"]["disk_misses"] == 0
        total_disk_hits = sum(c["disk_hits"] for c in warm_caches.values())
        assert total_disk_hits > 0  # served from the shipped archive
        # And the rows did not change because of where the fits came from.
        assert json.dumps(warm["rows"], sort_keys=True) == json.dumps(
            cold["rows"], sort_keys=True
        )
