"""Unit tests for the engine profiler (:mod:`repro.engine.profiling`)."""

from __future__ import annotations

import threading

from repro.engine.gateway import flatten_stats
from repro.engine.profiling import Profiler, profile_delta


class TestProfiler:
    def test_stage_accumulates_calls_and_time(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.stage("solve"):
                sum(range(1000))
        snap = profiler.snapshot()
        assert snap["solve"]["calls"] == 3
        assert snap["solve"]["wall_s"] >= 0.0
        assert snap["solve"]["cpu_s"] >= 0.0

    def test_stage_records_even_when_body_raises(self):
        profiler = Profiler()
        try:
            with profiler.stage("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert profiler.snapshot()["boom"]["calls"] == 1

    def test_count_records_events_without_time(self):
        profiler = Profiler()
        profiler.count("pruned", 5)
        profiler.count("pruned")
        snap = profiler.snapshot()
        assert snap["pruned"] == {"calls": 6, "wall_s": 0.0, "cpu_s": 0.0}

    def test_snapshot_is_a_copy_and_sorted(self):
        profiler = Profiler()
        profiler.count("b")
        profiler.count("a")
        snap = profiler.snapshot()
        assert list(snap) == ["a", "b"]
        snap["a"]["calls"] = 99
        assert profiler.snapshot()["a"]["calls"] == 1

    def test_reset_zeroes_everything(self):
        profiler = Profiler()
        profiler.count("x")
        profiler.reset()
        assert profiler.snapshot() == {}

    def test_thread_safety_totals(self):
        profiler = Profiler()

        def work():
            for _ in range(200):
                profiler.count("events")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert profiler.snapshot()["events"]["calls"] == 800

    def test_snapshot_flattens_to_metrics_gauges(self):
        profiler = Profiler()
        with profiler.stage("nonlinear_solve"):
            pass
        gauges = flatten_stats({"profile": profiler.snapshot()})
        assert gauges["estima_profile_nonlinear_solve_calls"] == 1.0
        assert "estima_profile_nonlinear_solve_wall_s" in gauges


class TestProfileDelta:
    def test_subtracts_and_drops_untouched_stages(self):
        profiler = Profiler()
        with profiler.stage("warm"):
            pass
        before = profiler.snapshot()
        with profiler.stage("hot"):
            pass
        delta = profile_delta(before, profiler.snapshot())
        assert "warm" not in delta  # no new calls since the snapshot
        assert delta["hot"]["calls"] == 1

    def test_new_stage_appears_in_full(self):
        delta = profile_delta({}, {"s": {"calls": 2, "wall_s": 1.5, "cpu_s": 1.0}})
        assert delta == {"s": {"calls": 2, "wall_s": 1.5, "cpu_s": 1.0}}

    def test_empty_delta_for_identical_snapshots(self):
        snap = {"s": {"calls": 2, "wall_s": 1.5, "cpu_s": 1.0}}
        assert profile_delta(snap, snap) == {}
