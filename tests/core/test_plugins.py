"""Tests for the software-stall plugin mechanism (Section 4.1)."""

from __future__ import annotations

import json

import pytest

from repro.core.measurement import Measurement, MeasurementSet
from repro.core.plugins import AGGREGATIONS, PluginSet, StallPlugin
from repro.sync.pthread_wrapper import PthreadWrapperReport, default_plugins_config

REPORT = """# pthread wrapper statistics (2 threads)
thread 0 lock_spin_cycles 1000
thread 1 lock_spin_cycles 1400
thread 0 barrier_wait_cycles 500
thread 1 barrier_wait_cycles 700
"""


class TestStallPlugin:
    def test_sum_aggregation(self):
        plugin = StallPlugin(name="lock_spin_cycles", pattern=r"lock_spin_cycles (\d+)")
        assert plugin.extract(REPORT) == pytest.approx(2400.0)

    def test_max_and_average_aggregation(self):
        assert StallPlugin(
            name="x", pattern=r"lock_spin_cycles (\d+)", aggregation="max"
        ).extract(REPORT) == pytest.approx(1400.0)
        assert StallPlugin(
            name="x", pattern=r"lock_spin_cycles (\d+)", aggregation="average"
        ).extract(REPORT) == pytest.approx(1200.0)

    def test_no_match_returns_zero(self):
        plugin = StallPlugin(name="aborts", pattern=r"stm_aborted_tx_cycles (\d+)")
        assert plugin.extract(REPORT) == 0.0

    def test_scale_applied(self):
        plugin = StallPlugin(
            name="x", pattern=r"barrier_wait_cycles (\d+)", aggregation="sum", scale=2.0
        )
        assert plugin.extract(REPORT) == pytest.approx(2400.0)

    def test_pattern_needs_one_group(self):
        with pytest.raises(ValueError):
            StallPlugin(name="x", pattern=r"lock_spin_cycles \d+")
        with pytest.raises(ValueError):
            StallPlugin(name="x", pattern=r"(\w+) (\d+)")

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            StallPlugin(name="x", pattern=r"(\d+)", aggregation="median")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            StallPlugin(name="x", pattern=r"(\d+)", level="firmware")

    def test_extract_from_file(self, tmp_path):
        path = tmp_path / "report.txt"
        path.write_text(REPORT)
        plugin = StallPlugin(name="x", pattern=r"lock_spin_cycles (\d+)")
        assert plugin.extract_from_file(path) == pytest.approx(2400.0)

    def test_all_aggregations_registered(self):
        assert {"sum", "min", "max", "average", "mean"} <= set(AGGREGATIONS)


class TestPluginSet:
    def _measurements(self) -> MeasurementSet:
        return MeasurementSet(
            measurements=tuple(
                Measurement(cores=c, time=10.0 / c, hardware_stalls={"rob": 100.0 * c})
                for c in (1, 2, 4)
            ),
            workload="demo",
        )

    def test_augment_adds_software_categories(self):
        plugins = PluginSet(
            plugins=(StallPlugin(name="lock_spin_cycles", pattern=r"lock_spin_cycles (\d+)"),)
        )
        augmented = plugins.augment(self._measurements(), {2: REPORT})
        by_cores = {m.cores: m for m in augmented}
        assert by_cores[2].software_stalls["lock_spin_cycles"] == pytest.approx(2400.0)
        assert "lock_spin_cycles" not in by_cores[1].software_stalls

    def test_augment_preserves_existing_counters(self):
        plugins = PluginSet(
            plugins=(StallPlugin(name="lock_spin_cycles", pattern=r"lock_spin_cycles (\d+)"),)
        )
        augmented = plugins.augment(self._measurements(), {4: REPORT})
        by_cores = {m.cores: m for m in augmented}
        assert by_cores[4].hardware_stalls["rob"] == pytest.approx(400.0)

    def test_hardware_level_plugin_lands_in_hardware(self):
        plugins = PluginSet(
            plugins=(
                StallPlugin(
                    name="extra_hw", pattern=r"barrier_wait_cycles (\d+)", level="hardware"
                ),
            )
        )
        augmented = plugins.augment(self._measurements(), {1: REPORT})
        by_cores = {m.cores: m for m in augmented}
        assert by_cores[1].hardware_stalls["extra_hw"] == pytest.approx(1200.0)

    def test_config_round_trip(self, tmp_path):
        plugins = PluginSet(
            plugins=tuple(StallPlugin.from_dict(d) for d in default_plugins_config())
        )
        path = tmp_path / "plugins.json"
        plugins.save_config(path)
        again = PluginSet.from_config(path)
        assert len(again) == len(plugins)
        assert {p.name for p in again} == {p.name for p in plugins}

    def test_from_config_accepts_bare_list(self, tmp_path):
        path = tmp_path / "plugins.json"
        path.write_text(json.dumps(default_plugins_config()))
        assert len(PluginSet.from_config(path)) == len(default_plugins_config())

    def test_augment_from_files(self, tmp_path):
        report_path = tmp_path / "run2.txt"
        report_path.write_text(REPORT)
        plugins = PluginSet(
            plugins=(StallPlugin(name="lock_spin_cycles", pattern=r"lock_spin_cycles (\d+)"),)
        )
        augmented = plugins.augment_from_files(self._measurements(), {2: report_path})
        by_cores = {m.cores: m for m in augmented}
        assert by_cores[2].software_stalls["lock_spin_cycles"] == pytest.approx(2400.0)


class TestPthreadWrapperIntegration:
    def test_rendered_report_parsed_by_default_plugins(self):
        report = PthreadWrapperReport(
            threads=4,
            lock_spin_cycles=4000.0,
            lock_block_cycles=0.0,
            barrier_wait_cycles=8000.0,
            stm_aborted_tx_cycles=2000.0,
        ).text()
        plugins = PluginSet(
            plugins=tuple(StallPlugin.from_dict(d) for d in default_plugins_config())
        )
        extracted = plugins.extract_all(report)
        # Per-thread skew keeps parsed totals within a few percent of the real totals.
        assert extracted["lock_spin_cycles"][1] == pytest.approx(4000.0, rel=0.1)
        assert extracted["barrier_wait_cycles"][1] == pytest.approx(8000.0, rel=0.1)
        assert extracted["stm_aborted_tx_cycles"][1] == pytest.approx(2000.0, rel=0.1)
        assert extracted["lock_block_cycles"][1] == 0.0
