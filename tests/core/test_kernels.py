"""Tests for the Table-1 extrapolation kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import DEFAULT_KERNEL_NAMES, KERNELS, get_kernel, kernel_names


class TestCatalogue:
    def test_all_six_paper_kernels_present(self):
        assert set(DEFAULT_KERNEL_NAMES) == {
            "Rat22",
            "Rat23",
            "Rat33",
            "CubicLn",
            "ExpRat",
            "Poly25",
        }

    def test_get_kernel_returns_named_kernel(self):
        for name in kernel_names():
            assert get_kernel(name).name == name

    def test_get_kernel_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("Quadratic")

    def test_parameter_counts_match_definitions(self):
        expected = {"Rat22": 5, "Rat23": 6, "Rat33": 7, "CubicLn": 4, "ExpRat": 4, "Poly25": 4}
        for name, n_params in expected.items():
            assert KERNELS[name].n_params == n_params

    def test_initial_guesses_have_right_arity(self):
        for kernel in KERNELS.values():
            assert kernel.initial_guesses, kernel.name
            for guess in kernel.initial_guesses:
                assert len(guess) == kernel.n_params


class TestEvaluation:
    def test_rat22_matches_closed_form(self):
        kernel = get_kernel("Rat22")
        params = (1.0, 2.0, 3.0, 0.5, 0.25)
        n = np.array([1.0, 2.0, 4.0])
        expected = (1.0 + 2.0 * n + 3.0 * n**2) / (1.0 + 0.5 * n + 0.25 * n**2)
        np.testing.assert_allclose(kernel(n, params), expected)

    def test_cubic_ln_matches_closed_form(self):
        kernel = get_kernel("CubicLn")
        params = (2.0, 1.0, 0.5, -0.1)
        n = np.array([1.0, np.e, np.e**2])
        ln = np.log(n)
        expected = 2.0 + ln + 0.5 * ln**2 - 0.1 * ln**3
        np.testing.assert_allclose(kernel(n, params), expected)

    def test_poly25_matches_closed_form(self):
        kernel = get_kernel("Poly25")
        params = (1.0, 2.0, 0.5, 0.1)
        n = np.array([1.0, 4.0, 9.0])
        expected = 1.0 + 2.0 * n + 0.5 * n**2 + 0.1 * n**2.5
        np.testing.assert_allclose(kernel(n, params), expected)

    def test_exprat_matches_closed_form(self):
        kernel = get_kernel("ExpRat")
        params = (1.0, 0.5, 2.0, 0.1)
        n = np.array([1.0, 2.0, 10.0])
        expected = np.exp((1.0 + 0.5 * n) / (2.0 + 0.1 * n))
        np.testing.assert_allclose(kernel(n, params), expected)

    def test_scalar_input_returns_array(self):
        kernel = get_kernel("Poly25")
        value = kernel(4.0, (0.0, 1.0, 0.0, 0.0))
        assert np.asarray(value).shape == ()
        assert float(value) == pytest.approx(4.0)


class TestRealism:
    def test_pole_inside_range_is_detected(self):
        kernel = get_kernel("Rat22")
        # Denominator 1 - 0.1 n vanishes at n = 10.
        params = (1.0, 0.0, 0.0, -0.1, 0.0)
        assert kernel.has_pole(params, np.arange(1.0, 49.0))
        assert not kernel.is_realistic(params, np.arange(1.0, 49.0))

    def test_no_pole_outside_range(self):
        kernel = get_kernel("Rat22")
        params = (1.0, 0.0, 0.0, -0.1, 0.0)  # pole at n = 10
        assert not kernel.has_pole(params, np.arange(1.0, 9.0))

    def test_negative_values_rejected_for_stall_series(self):
        kernel = get_kernel("CubicLn")
        params = (-5.0, 0.0, 0.0, 0.0)
        n = np.arange(1.0, 10.0)
        assert not kernel.is_realistic(params, n, allow_negative=False)
        assert kernel.is_realistic(params, n, allow_negative=True)

    def test_exploding_values_rejected(self):
        kernel = get_kernel("Poly25")
        params = (0.0, 0.0, 0.0, 1e20)
        assert not kernel.is_realistic(params, np.arange(1.0, 49.0), max_magnitude=1e12)

    def test_non_rational_kernels_never_report_poles(self):
        for name in ("CubicLn", "Poly25"):
            assert not KERNELS[name].has_pole((1.0, 1.0, 1.0, 1.0), np.arange(1.0, 49.0))


class TestKernelProperties:
    @given(
        n=st.floats(min_value=1.0, max_value=256.0),
        params=st.tuples(
            st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_poly25_finite_for_finite_inputs(self, n, params):
        value = get_kernel("Poly25")(n, params)
        assert np.isfinite(value)

    @given(
        n=st.floats(min_value=1.0, max_value=256.0),
        params=st.tuples(
            st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_cubic_ln_finite_for_finite_inputs(self, n, params):
        value = get_kernel("CubicLn")(n, params)
        assert np.isfinite(value)

    @given(
        params=st.tuples(
            st.floats(-3, 3), st.floats(-3, 3), st.floats(-3, 3), st.floats(-3, 3)
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_exprat_clipped_exponent_never_overflows(self, params):
        values = get_kernel("ExpRat")(np.arange(1.0, 129.0), params)
        assert np.all(np.isfinite(values))
