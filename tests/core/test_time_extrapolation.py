"""Tests for the time-extrapolation baseline (Section 2.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimaConfig, MeasurementSet, TimeExtrapolation
from repro.core.time_extrapolation import TimeExtrapolationPrediction


def _measurements(cores, times, **kwargs) -> MeasurementSet:
    return MeasurementSet.from_arrays(
        cores, times, {"stalls": [1.0] * len(cores)}, workload="synthetic", **kwargs
    )


@pytest.fixture(scope="module")
def scaling_series():
    """A cleanly scaling synthetic series: t(n) = 12/n + 0.5."""
    cores = list(range(1, 13))
    times = [12.0 / c + 0.5 for c in cores]
    return _measurements(cores, times)


@pytest.fixture(scope="module")
def prediction(scaling_series):
    return TimeExtrapolation(EstimaConfig()).predict(scaling_series, target_cores=48)


class TestPredict:
    def test_prediction_covers_full_core_range(self, prediction):
        assert prediction.target_cores == 48
        assert list(prediction.prediction_cores) == list(range(1, 49))
        assert prediction.predicted_times.shape == (48,)

    def test_predictions_are_positive(self, prediction):
        assert np.all(prediction.predicted_times > 0.0)

    def test_tracks_a_clean_scaling_trend(self, prediction):
        # The trend is visible in the measurements, the baseline's best case:
        # predicted time at 24 cores should be near 12/24 + 0.5 = 1.0.
        assert prediction.predicted_time_at(24) == pytest.approx(1.0, rel=0.25)

    def test_predicted_peak_cores_is_argmin(self, prediction):
        peak = prediction.predicted_peak_cores()
        assert (
            prediction.predicted_times[peak - 1] == np.min(prediction.predicted_times)
        )

    def test_measurement_cores_window_is_honoured(self, scaling_series):
        restricted = TimeExtrapolation(EstimaConfig()).predict(
            scaling_series, target_cores=48, measurement_cores=8
        )
        assert restricted.measured.max_cores == 8

    def test_target_below_measured_maximum_rejected(self, scaling_series):
        with pytest.raises(ValueError, match="below measured maximum"):
            TimeExtrapolation(EstimaConfig()).predict(scaling_series, target_cores=6)

    def test_target_equal_to_measured_maximum_is_allowed(self, scaling_series):
        prediction = TimeExtrapolation(EstimaConfig()).predict(
            scaling_series, target_cores=12
        )
        assert prediction.target_cores == 12

    def test_frequency_ratio_rescales_predictions(self, scaling_series):
        plain = TimeExtrapolation(EstimaConfig()).predict(scaling_series, target_cores=24)
        scaled = TimeExtrapolation(EstimaConfig(frequency_ratio=2.0)).predict(
            scaling_series, target_cores=24
        )
        np.testing.assert_allclose(
            scaled.predicted_times, plain.predicted_times * 2.0, rtol=1e-6
        )

    def test_dataset_ratio_rescales_predictions(self, scaling_series):
        plain = TimeExtrapolation(EstimaConfig()).predict(scaling_series, target_cores=24)
        weak = TimeExtrapolation(EstimaConfig(dataset_ratio=3.0)).predict(
            scaling_series, target_cores=24
        )
        # rtol absorbs fit-selection jitter between the two independently
        # computed extrapolations (the clean synthetic series near-ties
        # several candidates); the ratio itself is applied exactly.
        np.testing.assert_allclose(
            weak.predicted_times, plain.predicted_times * 3.0, rtol=1e-5
        )

    def test_degenerate_constant_series(self):
        # A flat series carries no trend; the baseline must still return a
        # finite positive curve rather than explode or go negative.
        flat = _measurements(list(range(1, 11)), [5.0] * 10)
        prediction = TimeExtrapolation(EstimaConfig()).predict(flat, target_cores=20)
        assert np.all(np.isfinite(prediction.predicted_times))
        assert np.all(prediction.predicted_times > 0.0)
        assert prediction.predicted_time_at(20) == pytest.approx(5.0, rel=0.5)

    def test_too_few_measurements_rejected(self):
        tiny = _measurements([1, 2], [4.0, 2.5])
        with pytest.raises(ValueError):
            TimeExtrapolation(EstimaConfig()).predict(tiny, target_cores=8)


class TestPredictionAccessors:
    def test_predicted_time_at_unknown_cores_raises(self, prediction):
        with pytest.raises(KeyError):
            prediction.predicted_time_at(99)

    def test_predicts_scaling_beyond_interior_point(self, prediction):
        # The series keeps improving well past 12 cores (t -> 0.5 floor).
        assert prediction.predicts_scaling_beyond(4)

    def test_predicts_scaling_beyond_last_point_is_false(self, prediction):
        assert not prediction.predicts_scaling_beyond(48)

    def test_predicts_scaling_beyond_unknown_cores_raises(self, prediction):
        with pytest.raises(KeyError):
            prediction.predicts_scaling_beyond(1000)

    def test_evaluate_against_ground_truth(self, prediction):
        truth = _measurements(
            list(range(1, 25)), [12.0 / c + 0.5 for c in range(1, 25)]
        )
        error = prediction.evaluate(truth, core_counts=[16, 20, 24])
        assert list(error.cores) == [16, 20, 24]
        assert error.max_error_pct >= error.mean_error_pct >= 0.0
        assert error.max_error_pct < 30.0  # clean trend: small errors

    def test_evaluate_defaults_to_cores_beyond_measurement(self, prediction):
        truth = _measurements(
            list(range(1, 25)), [12.0 / c + 0.5 for c in range(1, 25)]
        )
        error = prediction.evaluate(truth)
        assert all(c > 12 for c in error.cores)

    def test_evaluate_with_no_cores_raises(self, prediction):
        truth = _measurements([1, 2, 3], [12.5, 6.5, 4.5])
        with pytest.raises(ValueError, match="no core counts"):
            prediction.evaluate(truth, core_counts=[])

    def test_result_type(self, prediction):
        assert isinstance(prediction, TimeExtrapolationPrediction)
        assert prediction.workload == "synthetic"
        assert prediction.extrapolation.kernel_name
