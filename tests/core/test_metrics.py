"""Tests for error and correlation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    error_table_row,
    max_relative_error,
    mean_relative_error,
    pearson_correlation,
    relative_errors,
    rmse,
)


class TestRmse:
    def test_zero_for_identical_series(self):
        assert rmse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestRelativeErrors:
    def test_percent_conversion(self):
        assert max_relative_error([110.0], [100.0]) == pytest.approx(10.0)
        assert mean_relative_error([110.0, 100.0], [100.0, 100.0]) == pytest.approx(5.0)

    def test_symmetric_in_direction(self):
        # Under- and over-prediction of the same magnitude give the same error.
        assert max_relative_error([90.0], [100.0]) == pytest.approx(10.0)

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [0.0])

    def test_elementwise_values(self):
        errors = relative_errors([1.0, 3.0], [2.0, 2.0])
        np.testing.assert_allclose(errors, [0.5, 0.5])


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3.0 * x + 1.0) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_series_defined_as_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


class TestMetricProperties:
    @given(
        values=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=20),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_correlation_invariant_under_positive_scaling(self, values, scale):
        x = np.asarray(values)
        y = x * 2.0 + 5.0
        assert pearson_correlation(x, y) == pytest.approx(
            pearson_correlation(x * scale, y), abs=1e-9
        )

    @given(
        predicted=st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20),
        actual=st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_max_error_bounds_mean_error(self, predicted, actual):
        size = min(len(predicted), len(actual))
        p, a = predicted[:size], actual[:size]
        assert max_relative_error(p, a) >= mean_relative_error(p, a) - 1e-9

    @given(data=st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_rmse_zero_iff_equal(self, data):
        assert rmse(data, data) == pytest.approx(0.0)


class TestFormatting:
    def test_error_table_row_contains_all_cells(self):
        row = error_table_row("intruder", {"2 CPUs": 9.2, "4 CPUs": 31.9})
        assert "intruder" in row
        assert "9.2" in row and "31.9" in row
