"""Tests for the vectorized fit-grid engine (:mod:`repro.core.fastfit`).

The engine's contract is *bit-identity*: whatever the scalar reference path
would choose — kernels, parameters, predicted rows — the vectorized path
must choose too.  The tests here pin that contract at three levels: single
solver calls (lean driver vs ``least_squares``), whole fit grids, and full
``extrapolate_series`` results over a seeded fuzz corpus.

One caveat the fuzz tests must respect: the reference solver itself is not
perfectly reproducible across processes (BLAS/SIMD kernels can round
differently depending on allocation alignment), and on rare perfect-fit
series that noise flips the multi-start winner between two equally-good
fits.  A mismatch therefore only counts against the vectorized engine when
the serial path agrees with *itself* on that series; self-unstable series
are skipped (and counted, so a systematically unstable environment fails
loudly rather than silently skipping everything).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import fastfit
from repro.core.config import EstimaConfig
from repro.core.fastfit import (
    DEFAULT_FIT_STRATEGY,
    ENV_FIT_SCREEN,
    ENV_FIT_STRATEGY,
    FIT_STRATEGIES,
    LEAN_SOLVER_AVAILABLE,
    fit_grid,
    fit_strategy_from_env,
    parse_fit_strategy,
    resolve_fit_strategy,
    screen_mode_from_env,
)
from repro.core.fitting import (
    _norm_scale,
    _solve_start,
    _validate_series,
    fit_kernel,
)
from repro.core.kernels import KERNELS, get_kernel
from repro.core.regression import extrapolate_series
from repro.engine.cache import EXTRAPOLATION_CACHE, FIT_CACHE, caches_enabled, fit_key
from repro.engine.profiling import PROFILER, profile_delta

NONLINEAR = ("Rat22", "Rat23", "Rat33", "ExpRat")
LINEAR = ("CubicLn", "Poly25")


@pytest.fixture(autouse=True)
def _no_fit_strategy_env(monkeypatch):
    """Strategy comes from explicit config in these tests, never the host env."""
    monkeypatch.delenv(ENV_FIT_STRATEGY, raising=False)
    monkeypatch.delenv(ENV_FIT_SCREEN, raising=False)


# --------------------------------------------------------------------------- #
# Strategy selection
# --------------------------------------------------------------------------- #


class TestStrategySelection:
    def test_parse_accepts_known_tokens(self):
        assert parse_fit_strategy("serial") == "serial"
        assert parse_fit_strategy(" Vectorized ") == "vectorized"

    def test_parse_rejects_unknown_tokens(self):
        with pytest.raises(ValueError, match="fit_strategy"):
            parse_fit_strategy("turbo")

    def test_parse_names_its_source(self):
        with pytest.raises(ValueError, match=ENV_FIT_STRATEGY):
            parse_fit_strategy("turbo", source=ENV_FIT_STRATEGY)

    def test_env_unset_or_blank_is_none(self, monkeypatch):
        assert fit_strategy_from_env() is None
        monkeypatch.setenv(ENV_FIT_STRATEGY, "   ")
        assert fit_strategy_from_env() is None

    def test_env_value_is_validated(self, monkeypatch):
        monkeypatch.setenv(ENV_FIT_STRATEGY, "serial")
        assert fit_strategy_from_env() == "serial"
        monkeypatch.setenv(ENV_FIT_STRATEGY, "bogus")
        with pytest.raises(ValueError, match=ENV_FIT_STRATEGY):
            fit_strategy_from_env()

    def test_resolution_precedence(self, monkeypatch):
        assert resolve_fit_strategy(EstimaConfig()) == DEFAULT_FIT_STRATEGY
        monkeypatch.setenv(ENV_FIT_STRATEGY, "serial")
        assert resolve_fit_strategy(EstimaConfig()) == "serial"
        assert resolve_fit_strategy(EstimaConfig(fit_strategy="vectorized")) == "vectorized"

    def test_config_validates_field(self):
        with pytest.raises(ValueError, match="fit_strategy"):
            EstimaConfig(fit_strategy="bogus")
        for strategy in FIT_STRATEGIES:
            assert EstimaConfig(fit_strategy=strategy).fit_strategy == strategy

    def test_config_validates_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FIT_STRATEGY, "bogus")
        with pytest.raises(ValueError, match=ENV_FIT_STRATEGY):
            EstimaConfig()

    def test_screen_mode_default_off(self, monkeypatch):
        assert screen_mode_from_env() == "off"
        monkeypatch.setenv(ENV_FIT_SCREEN, "")
        assert screen_mode_from_env() == "off"

    def test_screen_mode_parsed_and_validated(self, monkeypatch):
        monkeypatch.setenv(ENV_FIT_SCREEN, "prune")
        assert screen_mode_from_env() == "prune"
        monkeypatch.setenv(ENV_FIT_SCREEN, "aggressive")
        with pytest.raises(ValueError, match=ENV_FIT_SCREEN):
            screen_mode_from_env()


# --------------------------------------------------------------------------- #
# Series validation (shared with the scalar path)
# --------------------------------------------------------------------------- #


class TestValidateSeriesCores:
    def test_non_finite_cores_rejected(self):
        assert _validate_series([1.0, np.nan, 3.0], [1.0, 2.0, 3.0]) is None
        assert _validate_series([1.0, np.inf, 3.0], [1.0, 2.0, 3.0]) is None

    def test_non_positive_cores_rejected(self):
        assert _validate_series([0.0, 1.0, 2.0], [1.0, 2.0, 3.0]) is None
        assert _validate_series([-1.0, 1.0, 2.0], [1.0, 2.0, 3.0]) is None

    def test_fit_kernel_returns_none_on_bad_cores(self):
        kernel = get_kernel("CubicLn")
        assert fit_kernel(kernel, [0.0, 1.0, 2.0, 4.0], [1.0, 2.0, 3.0, 4.0]) is None
        assert fit_kernel(kernel, [1.0, np.nan, 2.0, 4.0], [1.0, 2.0, 3.0, 4.0]) is None

    def test_fit_grid_returns_all_none_on_bad_cores(self):
        kernels = [get_kernel(name) for name in ("CubicLn", "Rat22")]
        grid = fit_grid(kernels, np.array([0.0, 1.0, 2.0]), np.ones(3), [2, 3])
        assert grid == [None] * 4

    def test_valid_series_passes(self):
        validated = _validate_series([1, 2, 4], [1.0, 1.8, 3.1])
        assert validated is not None
        x, y = validated
        np.testing.assert_array_equal(x, [1.0, 2.0, 4.0])


# --------------------------------------------------------------------------- #
# Lean non-linear driver: bitwise identity with the reference solver
# --------------------------------------------------------------------------- #


@pytest.mark.skipif(not LEAN_SOLVER_AVAILABLE, reason="private scipy entry points absent")
class TestLeanSolverIdentity:
    def _series(self, rng, n):
        x = np.arange(1.0, n + 1)
        family = rng.integers(0, 3)
        if family == 0:
            y = x / (1.0 + 0.05 * x) + rng.normal(0, 0.01, n)
        elif family == 1:
            y = 1.0 + 0.5 * x + 0.01 * x * x
        else:
            y = np.abs(rng.normal(1, 1, n)) + 0.1
        return x, y

    def test_bitwise_identical_to_reference_across_seeded_matrix(self):
        rng = np.random.default_rng(1234)
        checked = 0
        for name in NONLINEAR:
            kernel = get_kernel(name)
            for n in (3, 5, 8, 13):
                x, y = self._series(rng, n)
                y_norm = y / _norm_scale(y)
                underdetermined = x.size < kernel.n_params
                for guess in kernel.initial_guesses:
                    with np.errstate(all="ignore"):
                        ref = _solve_start(
                            kernel, x, y_norm, guess,
                            underdetermined=underdetermined, max_nfev=600,
                        )
                        lean = fastfit._lean_solve_start(
                            kernel, x, y_norm, guess,
                            underdetermined=underdetermined, max_nfev=600,
                        )
                    if ref is None:
                        assert lean is None
                    else:
                        assert lean is not None
                        assert lean.tobytes() == ref.tobytes(), (
                            f"{name} n={n} guess={guess}: lean {lean} != ref {ref}"
                        )
                    checked += 1
        assert checked >= len(NONLINEAR) * 4 * 2


# --------------------------------------------------------------------------- #
# Grid + extrapolation identity (the fuzz contract)
# --------------------------------------------------------------------------- #


def _result_signature(result):
    return (
        result.kernel_name,
        result.chosen.prefix_length,
        tuple(result.chosen.fitted.params),
        result.predict(np.arange(1.0, 33.0)).tobytes(),
        len(result.candidates),
    )


def _extrapolate(x, y, strategy):
    try:
        result = extrapolate_series(
            x, y, EstimaConfig(fit_strategy=strategy), target_cores=32
        )
    except RuntimeError as exc:  # no realistic fit — must agree across strategies
        return ("unfittable", str(exc))
    return _result_signature(result)


class TestSerialVectorizedFuzz:
    def test_three_point_underdetermined_series(self):
        x = np.array([1.0, 2.0, 4.0])
        y = np.array([1.0, 1.9, 3.4])
        assert _extrapolate(x, y, "serial") == _extrapolate(x, y, "vectorized")

    def test_seeded_fuzz_corpus_matches_serial(self):
        rng = np.random.default_rng(20260808)
        series = []
        for _ in range(180):
            n = int(rng.integers(4, 8))
            x = np.sort(rng.uniform(1.0, 32.0, n)) if rng.integers(2) else np.arange(1.0, n + 1)
            scale = 10.0 ** float(rng.uniform(-9.0, 12.0))
            y = (np.abs(rng.normal(1.0, 1.0, n)) + 0.1) * scale
            series.append((x, y))
        for n in (4, 5, 6, 7):
            x = np.arange(1.0, n + 1)
            series.append((x, 1.0 + 0.5 * x + 0.01 * x * x))
            series.append((x, x / (1.0 + 0.05 * x)))
            series.append((x, 3.0 * np.log(x + 1.0) + 1.0))
            series.append((x, 10.0 / (1.0 + np.exp(-0.5 * (x - n / 2.0)))))
        for n in (5, 6, 7):
            x = np.arange(1.0, n + 1)
            series.append((x, 100.0 / x**1.5))  # steeply decreasing: negative fallback
        for n in (5, 7):
            series.append((np.arange(1.0, n + 1), np.full(n, 3.25)))  # flat

        assert len(series) >= 200
        mismatched, unstable = [], []
        for i, (x, y) in enumerate(series):
            vec = _extrapolate(x, y, "vectorized")
            ser = _extrapolate(x, y, "serial")
            if vec == ser:
                continue
            # Only hold the mismatch against the engine when the reference
            # agrees with itself (see the module docstring).
            if _extrapolate(x, y, "serial") != ser:
                unstable.append(i)
                continue
            mismatched.append(i)
        assert not mismatched, f"vectorized diverged from stable serial on {mismatched}"
        # The reference path is expected to be stable on virtually every
        # series; tolerate only isolated perfect-fit flips.
        assert len(unstable) <= 2, f"serial reference unstable on {unstable}"


# --------------------------------------------------------------------------- #
# Cache interoperability
# --------------------------------------------------------------------------- #


class TestCacheInterop:
    def _run(self, strategy):
        x = np.arange(1.0, 9.0)
        y = x / (1.0 + 0.08 * x)
        return _extrapolate(x, y, strategy)

    def test_vectorized_hits_entries_warmed_by_serial(self):
        with caches_enabled(True):
            FIT_CACHE.clear()
            EXTRAPOLATION_CACHE.clear()
            first = self._run("serial")
            # Clear the outer extrapolation memo so the second strategy
            # reaches the fit grid instead of short-circuiting above it.
            EXTRAPOLATION_CACHE.clear()
            before = FIT_CACHE.stats.hits
            second = self._run("vectorized")
            assert second == first
            assert FIT_CACHE.stats.hits > before

    def test_serial_hits_entries_warmed_by_vectorized(self):
        with caches_enabled(True):
            FIT_CACHE.clear()
            EXTRAPOLATION_CACHE.clear()
            first = self._run("vectorized")
            EXTRAPOLATION_CACHE.clear()
            before = FIT_CACHE.stats.hits
            second = self._run("serial")
            assert second == first
            assert FIT_CACHE.stats.hits > before

    def test_fit_grid_fills_per_cell_keys(self):
        x = np.arange(1.0, 7.0)
        y = 1.0 + 0.3 * x
        kernels = [get_kernel(name) for name in ("CubicLn", "Rat22")]
        with caches_enabled(True):
            FIT_CACHE.clear()
            fit_grid(kernels, x, y, [3, 4], max_nfev=600)
            validated = _validate_series(x, y)
            assert validated is not None
            vx, vy = validated
            for p in (3, 4):
                for kernel in kernels:
                    hit, _ = FIT_CACHE.get(fit_key(kernel.name, vx[:p], vy[:p], 600))
                    assert hit, f"cell ({p}, {kernel.name}) not cached"


# --------------------------------------------------------------------------- #
# Opt-in screening mode
# --------------------------------------------------------------------------- #


class TestPruneMode:
    def test_prune_mode_runs_and_counts_pruned_starts(self, monkeypatch):
        monkeypatch.setenv(ENV_FIT_SCREEN, "prune")
        x = np.arange(1.0, 11.0)
        y = x / (1.0 + 0.07 * x) + 0.05 * np.sin(x)  # data-limited, not perfect-fit
        before = PROFILER.snapshot()
        result = extrapolate_series(
            x, y, EstimaConfig(fit_strategy="vectorized"), target_cores=32
        )
        delta = profile_delta(before, PROFILER.snapshot())
        assert np.all(np.isfinite(result.predict(np.arange(1.0, 33.0))))
        assert "start_screen" in delta
        pruned = delta.get("nonlinear_starts_pruned", {}).get("calls", 0)
        assert pruned > 0, "no starts pruned on a data-limited series"


# --------------------------------------------------------------------------- #
# Profiling stages
# --------------------------------------------------------------------------- #


class TestGridProfiling:
    @pytest.mark.parametrize("strategy", FIT_STRATEGIES)
    def test_stages_recorded(self, strategy):
        x = np.arange(1.0, 9.0)
        y = 2.0 + 0.4 * x
        before = PROFILER.snapshot()
        extrapolate_series(x, y, EstimaConfig(fit_strategy=strategy), target_cores=16)
        delta = profile_delta(before, PROFILER.snapshot())
        for stage in ("design_solve", "nonlinear_solve", "realism_screen", "checkpoint_score"):
            assert delta.get(stage, {}).get("calls", 0) > 0, f"{strategy}: {stage} missing"
