"""Tests for EstimaConfig and the stalls-to-time scaling factor (Section 3.1.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EstimaConfig
from repro.core.scaling_factor import fit_scaling_factor


class TestEstimaConfig:
    def test_defaults_match_paper_setup(self):
        config = EstimaConfig()
        assert config.checkpoints == 2
        assert config.min_prefix == 3
        assert config.use_software_stalls is True
        assert config.use_frontend_stalls is False
        assert len(config.kernels) == 6

    def test_invalid_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            EstimaConfig(checkpoints=0)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            EstimaConfig(min_prefix=1)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            EstimaConfig(kernel_names=("NotAKernel",))

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ValueError):
            EstimaConfig(kernel_names=())

    def test_cross_machine_frequency_ratio(self):
        config = EstimaConfig.for_cross_machine(
            measurement_frequency_ghz=3.4, target_frequency_ghz=2.8
        )
        assert config.frequency_ratio == pytest.approx(3.4 / 2.8)

    def test_cross_machine_invalid_frequency(self):
        with pytest.raises(ValueError):
            EstimaConfig.for_cross_machine(0.0, 2.8)

    def test_weak_scaling_factory(self):
        assert EstimaConfig.for_weak_scaling(2.0).dataset_ratio == 2.0
        with pytest.raises(ValueError):
            EstimaConfig.for_weak_scaling(0.0)

    def test_with_returns_modified_copy(self):
        config = EstimaConfig()
        other = config.with_(checkpoints=4)
        assert other.checkpoints == 4
        assert config.checkpoints == 2


class TestScalingFactor:
    def _inputs(self):
        cores = np.arange(1, 13)
        stalls_per_core = 1e9 * (2.0 + 0.1 * cores)
        # time proportional to stalls per core with a mildly varying factor
        factor_true = 1e-9 * (1.5 + 0.02 * cores)
        times = stalls_per_core * factor_true
        eval_cores = np.arange(1, 49)
        eval_spc = 1e9 * (2.0 + 0.1 * eval_cores)
        return cores, times, stalls_per_core, eval_cores, eval_spc

    def test_factor_reproduces_measured_times(self):
        cores, times, spc, eval_cores, eval_spc = self._inputs()
        model = fit_scaling_factor(
            cores, times, spc, EstimaConfig(), eval_cores=eval_cores, eval_stalls_per_core=eval_spc
        )
        predicted = model.predict_time(cores, spc)
        np.testing.assert_allclose(predicted, times, rtol=0.05)

    def test_selection_criterion_is_correlation(self):
        cores, times, spc, eval_cores, eval_spc = self._inputs()
        model = fit_scaling_factor(
            cores, times, spc, EstimaConfig(), eval_cores=eval_cores, eval_stalls_per_core=eval_spc
        )
        assert model.correlation > 0.9

    def test_measured_factor_stored(self):
        cores, times, spc, eval_cores, eval_spc = self._inputs()
        model = fit_scaling_factor(
            cores, times, spc, EstimaConfig(), eval_cores=eval_cores, eval_stalls_per_core=eval_spc
        )
        np.testing.assert_allclose(model.measured_factor, times / spc)

    def test_zero_stalls_rejected(self):
        cores = np.arange(1, 13)
        with pytest.raises(ValueError):
            fit_scaling_factor(
                cores,
                np.ones(12),
                np.zeros(12),
                EstimaConfig(),
                eval_cores=cores,
                eval_stalls_per_core=np.ones(12),
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_scaling_factor(
                [1, 2, 3],
                [1.0, 2.0],
                [1.0, 2.0, 3.0],
                EstimaConfig(),
                eval_cores=[1, 2],
                eval_stalls_per_core=[1.0, 2.0],
            )

    def test_factor_values_non_negative(self):
        cores, times, spc, eval_cores, eval_spc = self._inputs()
        model = fit_scaling_factor(
            cores, times, spc, EstimaConfig(), eval_cores=eval_cores, eval_stalls_per_core=eval_spc
        )
        assert np.all(model.factor(eval_cores) >= 0.0)

    def test_time_unit_rescaling_scales_predictions(self):
        """Rescaling times (e.g. ms instead of s) rescales predictions linearly."""
        cores, times, spc, eval_cores, eval_spc = self._inputs()
        m1 = fit_scaling_factor(
            cores, times, spc, EstimaConfig(), eval_cores=eval_cores, eval_stalls_per_core=eval_spc
        )
        m2 = fit_scaling_factor(
            cores,
            times * 1000.0,
            spc,
            EstimaConfig(),
            eval_cores=eval_cores,
            eval_stalls_per_core=eval_spc,
        )
        p1 = m1.predict_time(24, 1e9 * 4.4)
        p2 = m2.predict_time(24, 1e9 * 4.4)
        assert p2 == pytest.approx(p1 * 1000.0, rel=0.05)
