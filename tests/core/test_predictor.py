"""Integration tests for the end-to-end ESTIMA pipeline and its baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EstimaConfig,
    EstimaPredictor,
    MeasurementSet,
    ScalabilityPrediction,
    TimeExtrapolation,
)


class TestPredictionObject:
    def test_prediction_covers_every_core_count(self, intruder_prediction):
        assert list(intruder_prediction.prediction_cores) == list(range(1, 49))
        assert intruder_prediction.predicted_times.shape == (48,)
        assert np.all(intruder_prediction.predicted_times > 0.0)

    def test_category_extrapolations_cover_measured_categories(
        self, intruder_prediction, intruder_opteron_sweep
    ):
        measured_names = set(intruder_opteron_sweep.restrict_to(12).category_names())
        assert set(intruder_prediction.category_extrapolations) <= measured_names
        assert "stm_aborted_tx_cycles" in intruder_prediction.category_extrapolations

    def test_predicted_time_at_matches_array(self, intruder_prediction):
        assert intruder_prediction.predicted_time_at(24) == pytest.approx(
            float(intruder_prediction.predicted_times[23])
        )
        with pytest.raises(KeyError):
            intruder_prediction.predicted_time_at(100)

    def test_speedup_normalised_to_single_core(self, blackscholes_prediction):
        speedup = blackscholes_prediction.predicted_speedup()
        assert speedup[0] == pytest.approx(1.0)
        assert speedup[-1] > 20.0  # blackscholes keeps scaling

    def test_peak_cores_for_scalable_workload_is_near_full_machine(self, blackscholes_prediction):
        assert blackscholes_prediction.predicted_peak_cores() >= 40

    def test_peak_cores_for_contended_workload_is_mid_machine(self, intruder_prediction):
        assert 12 < intruder_prediction.predicted_peak_cores() < 40

    def test_predicts_scaling_beyond_helper(self, blackscholes_prediction, intruder_prediction):
        assert blackscholes_prediction.predicts_scaling_beyond(12)
        assert not intruder_prediction.predicts_scaling_beyond(36)

    def test_dominant_categories_sum_to_at_most_one(self, intruder_prediction):
        shares = intruder_prediction.dominant_categories(48, top=10)
        assert shares
        assert sum(fraction for _, fraction in shares) == pytest.approx(1.0, abs=1e-6)
        assert all(0.0 <= fraction <= 1.0 for _, fraction in shares)

    def test_evaluate_scores_only_extrapolated_core_counts(
        self, intruder_prediction, intruder_opteron_sweep
    ):
        error = intruder_prediction.evaluate(intruder_opteron_sweep)
        assert np.all(error.cores > 12)
        assert error.max_error_pct >= error.mean_error_pct

    def test_error_at_specific_core_count(self, intruder_prediction, intruder_opteron_sweep):
        error = intruder_prediction.evaluate(intruder_opteron_sweep)
        cores = int(error.cores[0])
        assert error.error_at(cores) >= 0.0
        with pytest.raises(KeyError):
            error.error_at(7)

    def test_summary_mentions_workload_and_kernels(self, intruder_prediction):
        text = intruder_prediction.summary()
        assert "intruder" in text
        assert "scaling-factor kernel" in text


class TestPredictorValidation:
    def test_requires_enough_measurements(self, intruder_opteron_sweep):
        tiny = intruder_opteron_sweep.restrict_to(2)
        with pytest.raises(ValueError):
            EstimaPredictor().predict(tiny, target_cores=48)

    def test_target_below_measured_rejected(self, intruder_opteron_sweep):
        with pytest.raises(ValueError):
            EstimaPredictor().predict(intruder_opteron_sweep.restrict_to(12), target_cores=8)

    def test_measurement_cores_argument_restricts(self, intruder_opteron_sweep):
        prediction = EstimaPredictor().predict(
            intruder_opteron_sweep, target_cores=48, measurement_cores=12
        )
        assert prediction.measured.max_cores == 12

    def test_measurements_without_stalls_rejected(self):
        measurements = MeasurementSet.from_arrays(
            cores=[1, 2, 4, 6, 8], times=[8.0, 4.0, 2.0, 1.4, 1.1]
        )
        with pytest.raises(ValueError, match="no non-zero stall categories"):
            EstimaPredictor().predict(measurements, target_cores=16)

    def test_hardware_only_mode(self, intruder_opteron_sweep):
        config = EstimaConfig(use_software_stalls=False)
        prediction = EstimaPredictor(config).predict(
            intruder_opteron_sweep.restrict_to(12), target_cores=48
        )
        assert "stm_aborted_tx_cycles" not in prediction.category_extrapolations

    def test_frequency_ratio_rescales_times(self, blackscholes_opteron_sweep):
        measured = blackscholes_opteron_sweep.restrict_to(12)
        base = EstimaPredictor(EstimaConfig()).predict(measured, target_cores=24)
        scaled = EstimaPredictor(EstimaConfig(frequency_ratio=0.5)).predict(
            measured, target_cores=24
        )
        assert scaled.predicted_time_at(24) == pytest.approx(
            0.5 * base.predicted_time_at(24), rel=0.05
        )

    def test_weak_scaling_ratio_increases_predicted_times(self, blackscholes_opteron_sweep):
        measured = blackscholes_opteron_sweep.restrict_to(12)
        strong = EstimaPredictor(EstimaConfig()).predict(measured, target_cores=24)
        weak = EstimaPredictor(EstimaConfig(dataset_ratio=2.0)).predict(measured, target_cores=24)
        assert weak.predicted_time_at(24) > strong.predicted_time_at(24)

    def test_result_is_scalability_prediction(self, intruder_prediction):
        assert isinstance(intruder_prediction, ScalabilityPrediction)


class TestTimeExtrapolationBaseline:
    def test_baseline_runs_and_covers_range(self, intruder_opteron_sweep):
        baseline = TimeExtrapolation().predict(
            intruder_opteron_sweep.restrict_to(12), target_cores=48
        )
        assert baseline.prediction_cores.shape == (48,)
        assert np.all(baseline.predicted_times > 0.0)

    def test_baseline_misses_intruder_collapse(self, intruder_opteron_sweep):
        """The Figure-1/Section-2.4 failure mode: no trend in time, no warning."""
        baseline = TimeExtrapolation().predict(
            intruder_opteron_sweep.restrict_to(12), target_cores=48
        )
        assert baseline.predicted_peak_cores() >= 40

    def test_baseline_evaluation_contract_matches_estima(self, intruder_opteron_sweep):
        baseline = TimeExtrapolation().predict(
            intruder_opteron_sweep.restrict_to(12), target_cores=48
        )
        error = baseline.evaluate(intruder_opteron_sweep)
        assert np.all(error.cores > 12)
        assert error.max_error_pct > 0.0

    def test_baseline_respects_measurement_cores(self, intruder_opteron_sweep):
        baseline = TimeExtrapolation().predict(
            intruder_opteron_sweep, target_cores=48, measurement_cores=12
        )
        assert baseline.measured.max_cores == 12

    def test_baseline_target_below_measured_rejected(self, intruder_opteron_sweep):
        with pytest.raises(ValueError):
            TimeExtrapolation().predict(intruder_opteron_sweep.restrict_to(12), target_cores=4)
