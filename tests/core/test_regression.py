"""Tests for the checkpoint-based regression (Section 3.1.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EstimaConfig
from repro.core.regression import candidate_fits, extrapolate_series


def _growing_series(cores: np.ndarray, *, quadratic: float = 2.0) -> np.ndarray:
    return 1e9 * (5.0 + 0.5 * cores + quadratic * 0.05 * cores**2)


class TestExtrapolateSeries:
    def test_recovers_polynomial_growth(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48, category="rob")
        predicted = result.predict(48)
        expected = _growing_series(np.array([48]))[0]
        assert predicted == pytest.approx(expected, rel=0.25)

    def test_checkpoints_are_highest_core_counts(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        result = extrapolate_series(
            cores, values, EstimaConfig(checkpoints=2), target_cores=48
        )
        assert result.checkpoint_cores == (11, 12)

    def test_four_checkpoints_supported(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        result = extrapolate_series(
            cores, values, EstimaConfig(checkpoints=4), target_cores=48
        )
        assert result.checkpoint_cores == (9, 10, 11, 12)

    def test_chosen_fit_minimises_checkpoint_rmse(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48)
        best = min(result.candidates, key=lambda c: c.checkpoint_rmse)
        assert result.chosen.checkpoint_rmse == pytest.approx(best.checkpoint_rmse)

    def test_prediction_clamped_non_negative(self):
        cores = np.arange(1, 13)
        values = np.maximum(1e9 - 9e7 * cores, 1e7)  # steeply decreasing series
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48)
        assert np.all(result.predict(np.arange(1, 49)) >= 0.0)

    def test_too_few_measurements_raise(self):
        with pytest.raises(ValueError):
            extrapolate_series([1, 2], [1.0, 2.0], EstimaConfig(), target_cores=48)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            extrapolate_series([1, 2, 3], [1.0, 2.0], EstimaConfig(), target_cores=48)

    def test_flat_series_extrapolates_flat(self):
        cores = np.arange(1, 13)
        values = np.full(12, 3.3e9)
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48)
        assert result.predict(48) == pytest.approx(3.3e9, rel=0.1)

    def test_candidates_cover_multiple_prefixes(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48)
        prefixes = {c.prefix_length for c in result.candidates}
        assert len(prefixes) > 1
        assert min(prefixes) >= EstimaConfig().min_prefix

    def test_kernel_subset_is_respected(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        config = EstimaConfig(kernel_names=("Poly25",))
        result = extrapolate_series(cores, values, config, target_cores=48)
        assert result.kernel_name == "Poly25"
        assert all(c.kernel_name == "Poly25" for c in result.candidates)


class TestCandidateFits:
    def test_returns_checkpoint_cores(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        candidates, checkpoints = candidate_fits(
            cores, values, EstimaConfig(), target_cores=48
        )
        assert checkpoints == (11, 12)
        assert candidates

    def test_all_candidates_are_realistic_on_target_range(self):
        cores = np.arange(1, 13)
        values = _growing_series(cores)
        candidates, _ = candidate_fits(cores, values, EstimaConfig(), target_cores=48)
        grid = np.arange(1.0, 49.0)
        for candidate in candidates:
            assert np.all(np.isfinite(candidate.fitted(grid)))

    def test_checkpoints_shrink_for_short_series(self):
        cores = np.arange(1, 6)
        values = _growing_series(cores)
        _, checkpoints = candidate_fits(
            cores, values, EstimaConfig(checkpoints=4), target_cores=16
        )
        # Only 5 points: at least two must remain for training.
        assert len(checkpoints) <= 3


class TestRegressionProperties:
    @given(
        slope=st.floats(min_value=0.01, max_value=5.0),
        quad=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=15, deadline=None)
    def test_monotone_growing_series_predicts_growth(self, slope, quad):
        """Extrapolation of a cleanly growing series never collapses to ~zero."""
        cores = np.arange(1, 13)
        values = 1e9 * (1.0 + slope * cores + quad * cores**2)
        result = extrapolate_series(cores, values, EstimaConfig(), target_cores=48)
        assert result.predict(48) >= 0.5 * values[-1]

    @given(scale=st.floats(min_value=1e-3, max_value=1e12))
    @settings(max_examples=15, deadline=None)
    def test_prediction_scales_linearly_with_input_scale(self, scale):
        """Rescaling the series rescales the extrapolation (unit invariance)."""
        cores = np.arange(1, 13)
        base = 5.0 + 0.5 * cores + 0.1 * cores**2
        r1 = extrapolate_series(cores, base, EstimaConfig(), target_cores=24)
        r2 = extrapolate_series(cores, base * scale, EstimaConfig(), target_cores=24)
        assert r2.predict(24) == pytest.approx(r1.predict(24) * scale, rel=0.05)
