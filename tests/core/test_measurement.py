"""Tests for the measurement containers (Measurement / MeasurementSet)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measurement import Measurement, MeasurementSet


def _measurement(cores: int, time: float = 1.0, stalls: float = 100.0) -> Measurement:
    return Measurement(
        cores=cores,
        time=time,
        hardware_stalls={"rob_full": stalls, "ls_full": stalls / 2},
        software_stalls={"stm_aborted_tx_cycles": stalls / 4},
        frontend_stalls={"icache_misses": 1.0},
    )


class TestMeasurement:
    def test_total_and_per_core_stalls(self):
        m = _measurement(cores=4, stalls=100.0)
        assert m.total_stalls(software=False) == pytest.approx(150.0)
        assert m.total_stalls(software=True) == pytest.approx(175.0)
        assert m.stalls_per_core(software=True) == pytest.approx(175.0 / 4)

    def test_frontend_only_included_on_request(self):
        m = _measurement(cores=2)
        assert "icache_misses" not in m.stall_categories()
        assert "icache_misses" in m.stall_categories(frontend=True)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            Measurement(cores=0, time=1.0)

    def test_invalid_time_rejected(self):
        with pytest.raises(ValueError):
            Measurement(cores=1, time=0.0)
        with pytest.raises(ValueError):
            Measurement(cores=1, time=float("nan"))

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            Measurement(cores=1, time=1.0, hardware_stalls={"x": -1.0})

    def test_round_trips_through_dict(self):
        m = _measurement(cores=3, time=2.5)
        again = Measurement.from_dict(m.to_dict())
        assert again == m


class TestMeasurementSet:
    def _set(self) -> MeasurementSet:
        return MeasurementSet(
            measurements=tuple(_measurement(c, time=10.0 / c, stalls=50.0 * c) for c in range(1, 13)),
            workload="intruder",
            machine="opteron48",
            frequency_ghz=2.1,
        )

    def test_sorted_by_cores(self):
        ms = MeasurementSet(
            measurements=(_measurement(4), _measurement(1), _measurement(2)),
        )
        assert list(ms.cores) == [1, 2, 4]

    def test_duplicate_core_counts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MeasurementSet(measurements=(_measurement(2), _measurement(2)))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            MeasurementSet(measurements=())

    def test_category_series_aligned_with_cores(self):
        ms = self._set()
        series = ms.category_series("rob_full")
        np.testing.assert_allclose(series, 50.0 * ms.cores)

    def test_category_series_missing_category_is_zero(self):
        ms = self._set()
        assert np.all(ms.category_series("nonexistent") == 0.0)

    def test_category_names_union(self):
        ms = self._set()
        names = ms.category_names(software=True)
        assert "rob_full" in names and "stm_aborted_tx_cycles" in names
        assert "stm_aborted_tx_cycles" not in ms.category_names(software=False)

    def test_restrict_to_keeps_prefix(self):
        ms = self._set().restrict_to(4)
        assert ms.max_cores == 4
        assert len(ms) == 4

    def test_restrict_to_nothing_raises(self):
        with pytest.raises(ValueError):
            self._set().restrict_to(0)

    def test_subset_selects_exact_core_counts(self):
        ms = self._set().subset([1, 4, 8])
        assert list(ms.cores) == [1, 4, 8]

    def test_subset_missing_core_count_raises(self):
        with pytest.raises(KeyError):
            self._set().subset([1, 40])

    def test_time_at_exact_core_count(self):
        ms = self._set()
        assert ms.time_at(5) == pytest.approx(2.0)
        with pytest.raises(KeyError):
            ms.time_at(100)

    def test_stalls_per_core_shape(self):
        ms = self._set()
        assert ms.stalls_per_core().shape == (12,)

    def test_json_round_trip(self, tmp_path):
        ms = self._set()
        path = tmp_path / "meas.json"
        ms.save(path)
        again = MeasurementSet.load(path)
        assert again.workload == ms.workload
        assert list(again.cores) == list(ms.cores)
        np.testing.assert_allclose(again.times, ms.times)

    def test_from_arrays_builder(self):
        ms = MeasurementSet.from_arrays(
            cores=[1, 2, 4],
            times=[4.0, 2.0, 1.0],
            categories={"rob_full": [10.0, 20.0, 40.0]},
            software_categories={"aborts": [0.0, 1.0, 2.0]},
            workload="demo",
        )
        assert ms.workload == "demo"
        assert ms.category_series("aborts")[2] == 2.0


class TestMeasurementSetProperties:
    @given(
        core_counts=st.lists(
            st.integers(min_value=1, max_value=64), min_size=3, max_size=12, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cores_always_ascending(self, core_counts):
        ms = MeasurementSet(
            measurements=tuple(_measurement(c) for c in core_counts),
        )
        cores = ms.cores
        assert np.all(np.diff(cores) > 0)

    @given(max_cores=st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_restrict_never_exceeds_bound(self, max_cores):
        ms = MeasurementSet(measurements=tuple(_measurement(c) for c in range(1, 13)))
        assert ms.restrict_to(max_cores).max_cores <= max_cores
