"""Tests for the weak-scaling helpers (Section 4.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weak_scaling import (
    dataset_ratio_from_footprints,
    scale_categories,
    scale_extrapolated_stalls,
)


class TestScaleExtrapolatedStalls:
    def test_unit_ratio_is_identity(self):
        stalls = np.array([1e9, 2e9, 3e9])
        scaled = scale_extrapolated_stalls(stalls, dataset_ratio=1.0)
        np.testing.assert_array_equal(scaled, stalls)

    def test_scales_linearly_with_ratio(self):
        stalls = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(
            scale_extrapolated_stalls(stalls, dataset_ratio=2.5), stalls * 2.5
        )

    def test_accepts_shrinking_datasets(self):
        stalls = np.array([10.0, 20.0])
        np.testing.assert_allclose(
            scale_extrapolated_stalls(stalls, dataset_ratio=0.5), [5.0, 10.0]
        )

    def test_list_input_becomes_float_array(self):
        scaled = scale_extrapolated_stalls([1, 2, 3], dataset_ratio=2.0)
        assert scaled.dtype == float
        np.testing.assert_array_equal(scaled, [2.0, 4.0, 6.0])

    def test_empty_series_stays_empty(self):
        assert scale_extrapolated_stalls(np.array([]), dataset_ratio=3.0).size == 0

    @pytest.mark.parametrize("ratio", [0.0, -1.0])
    def test_nonpositive_ratio_rejected(self, ratio):
        with pytest.raises(ValueError, match="dataset_ratio"):
            scale_extrapolated_stalls(np.array([1.0]), dataset_ratio=ratio)


class TestScaleCategories:
    CATEGORIES = {
        "mem_stalls": np.array([4.0, 8.0]),
        "fpu_stalls": np.array([2.0, 2.0]),
    }

    def test_default_exponent_is_uniform_scaling(self):
        scaled = scale_categories(self.CATEGORIES, dataset_ratio=3.0)
        np.testing.assert_allclose(scaled["mem_stalls"], [12.0, 24.0])
        np.testing.assert_allclose(scaled["fpu_stalls"], [6.0, 6.0])

    def test_per_category_exponents(self):
        scaled = scale_categories(
            self.CATEGORIES,
            dataset_ratio=4.0,
            exponents={"fpu_stalls": 0.0, "mem_stalls": 0.5},
        )
        np.testing.assert_allclose(scaled["fpu_stalls"], self.CATEGORIES["fpu_stalls"])
        np.testing.assert_allclose(scaled["mem_stalls"], self.CATEGORIES["mem_stalls"] * 2.0)

    def test_unknown_exponent_keys_are_ignored(self):
        scaled = scale_categories(
            self.CATEGORIES, dataset_ratio=2.0, exponents={"not_a_category": 3.0}
        )
        np.testing.assert_allclose(scaled["mem_stalls"], [8.0, 16.0])

    def test_unit_ratio_any_exponent_is_identity(self):
        scaled = scale_categories(
            self.CATEGORIES, dataset_ratio=1.0, exponents={"mem_stalls": 2.7}
        )
        np.testing.assert_allclose(scaled["mem_stalls"], self.CATEGORIES["mem_stalls"])

    def test_inputs_are_not_mutated(self):
        original = self.CATEGORIES["mem_stalls"].copy()
        scale_categories(self.CATEGORIES, dataset_ratio=5.0)
        np.testing.assert_array_equal(self.CATEGORIES["mem_stalls"], original)

    def test_empty_mapping_gives_empty_mapping(self):
        assert scale_categories({}, dataset_ratio=2.0) == {}

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ValueError, match="dataset_ratio"):
            scale_categories(self.CATEGORIES, dataset_ratio=0.0)


class TestDatasetRatioFromFootprints:
    def test_ratio_of_footprints(self):
        assert dataset_ratio_from_footprints(512.0, 2048.0) == 4.0

    def test_sub_unit_ratio_for_smaller_target(self):
        assert dataset_ratio_from_footprints(1000.0, 250.0) == 0.25

    @pytest.mark.parametrize("measured,target", [(0.0, 10.0), (10.0, 0.0), (-1.0, 5.0)])
    def test_nonpositive_footprints_rejected(self, measured, target):
        with pytest.raises(ValueError, match="footprints"):
            dataset_ratio_from_footprints(measured, target)
