"""Tests for non-linear / linear kernel fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import FittedFunction, fit_all_starts, fit_kernel
from repro.core.kernels import get_kernel


class TestFitKernel:
    def test_poly25_recovers_generating_parameters(self):
        cores = np.arange(1, 13, dtype=float)
        true = 5.0 + 2.0 * cores + 0.3 * cores**2 + 0.05 * cores**2.5
        fitted = fit_kernel(get_kernel("Poly25"), cores, true)
        assert fitted is not None
        np.testing.assert_allclose(fitted(cores), true, rtol=1e-6)

    def test_cubic_ln_recovers_generating_parameters(self):
        cores = np.arange(1, 13, dtype=float)
        ln = np.log(cores)
        true = 10.0 + 3.0 * ln + 0.5 * ln**2 + 0.1 * ln**3
        fitted = fit_kernel(get_kernel("CubicLn"), cores, true)
        assert fitted is not None
        np.testing.assert_allclose(fitted(cores), true, rtol=1e-6)

    def test_rational_kernel_fits_saturating_curve(self):
        cores = np.arange(1, 13, dtype=float)
        true = 100.0 * cores / (1.0 + 0.1 * cores)
        fitted = fit_kernel(get_kernel("Rat22"), cores, true)
        assert fitted is not None
        assert fitted.train_rmse < 0.05 * np.mean(true)

    def test_large_scale_values_are_handled(self):
        # Raw counter values are ~1e11; normalisation must keep the fit stable.
        cores = np.arange(1, 13, dtype=float)
        true = 1e11 * (1.0 + 0.2 * cores + 0.01 * cores**2)
        fitted = fit_kernel(get_kernel("Poly25"), cores, true)
        assert fitted is not None
        np.testing.assert_allclose(fitted(cores), true, rtol=1e-5)

    def test_tiny_scale_values_are_handled(self):
        # Scaling-factor values are ~1e-9 seconds per stalled cycle.
        cores = np.arange(1, 13, dtype=float)
        true = 1e-9 * (2.0 + 0.05 * cores)
        fitted = fit_kernel(get_kernel("CubicLn"), cores, true)
        assert fitted is not None
        assert fitted.train_rmse < 1e-10

    def test_underdetermined_series_still_produces_a_fit(self):
        # 7 parameters, 3 points: under-determined but still usable (needed for
        # the 3-point memcached desktop measurements of Section 4.3).
        cores = np.array([1.0, 2.0, 3.0])
        values = np.array([10.0, 20.0, 30.0])
        fitted = fit_kernel(get_kernel("Rat33"), cores, values)
        if fitted is not None:  # convergence from generic starts is not guaranteed
            assert np.all(np.isfinite(fitted(cores)))

    def test_non_finite_values_return_none(self):
        cores = np.arange(1, 13, dtype=float)
        values = np.full(12, np.nan)
        assert fit_kernel(get_kernel("Poly25"), cores, values) is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fit_kernel(get_kernel("Poly25"), [1, 2, 3], [1.0, 2.0])

    def test_single_point_returns_none(self):
        assert fit_kernel(get_kernel("Poly25"), [1], [1.0]) is None


class TestFittedFunction:
    def _fit(self) -> FittedFunction:
        cores = np.arange(1, 13, dtype=float)
        values = 10.0 + cores**2
        fitted = fit_kernel(get_kernel("Poly25"), cores, values)
        assert fitted is not None
        return fitted

    def test_call_returns_original_units(self):
        fitted = self._fit()
        assert float(fitted(2.0)) == pytest.approx(14.0, rel=1e-4)

    def test_name_matches_kernel(self):
        assert self._fit().name == "Poly25"

    def test_is_realistic_rejects_negative_extrapolation(self):
        cores = np.arange(1, 13, dtype=float)
        values = 100.0 - 10.0 * np.log(cores) ** 3  # goes negative for large n
        fitted = fit_kernel(get_kernel("CubicLn"), cores, values)
        assert fitted is not None
        assert not fitted.is_realistic(np.arange(1.0, 49.0), allow_negative=False)
        assert fitted.is_realistic(np.arange(1.0, 49.0), allow_negative=True)

    def test_is_realistic_respects_magnitude_bound(self):
        fitted = self._fit()
        assert fitted.is_realistic(np.arange(1.0, 49.0), max_factor=1e9)
        assert not fitted.is_realistic(np.arange(1.0, 49.0), max_factor=10.0)


class TestFitAllStarts:
    def test_returns_multiple_converged_fits(self):
        cores = np.arange(1, 13, dtype=float)
        values = 50.0 * cores / (1.0 + 0.05 * cores)
        fits = fit_all_starts(get_kernel("Rat22"), cores, values)
        assert len(fits) >= 1
        assert all(np.all(np.isfinite(f(cores))) for f in fits)

    def test_underdetermined_series_uses_trust_region_path(self):
        # 7 parameters, 3 points: previously this silently produced no fits
        # because the Levenberg-Marquardt solver rejects under-determined
        # problems; the shared multi-start helper now falls back to the
        # trust-region solver, exactly like fit_kernel.
        fits = fit_all_starts(get_kernel("Rat33"), [1, 2, 3], [1.0, 2.0, 3.0])
        assert all(np.all(np.isfinite(f([1.0, 2.0, 3.0]))) for f in fits)
        best = fit_kernel(get_kernel("Rat33"), [1, 2, 3], [1.0, 2.0, 3.0])
        if fits:
            assert best is not None
            assert best.train_rmse == min(f.train_rmse for f in fits)

    def test_linear_kernels_return_single_exact_solution(self):
        cores = np.arange(1, 13, dtype=float)
        values = 5.0 + 2.0 * cores + 0.3 * cores**2 + 0.05 * cores**2.5
        fits = fit_all_starts(get_kernel("Poly25"), cores, values)
        assert len(fits) == 1
        np.testing.assert_allclose(fits[0](cores), values, rtol=1e-6)

    def test_too_short_series_returns_empty(self):
        assert fit_all_starts(get_kernel("Rat33"), [1], [1.0]) == []


class TestFittingProperties:
    @given(
        a=st.floats(min_value=0.1, max_value=100.0),
        b=st.floats(min_value=0.0, max_value=10.0),
        c=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_kernels_reproduce_exact_polynomials(self, a, b, c):
        """Poly25 fits of data generated by Poly25 are exact (linear LSQ)."""
        cores = np.arange(1, 13, dtype=float)
        values = a + b * cores + c * cores**2
        fitted = fit_kernel(get_kernel("Poly25"), cores, values)
        assert fitted is not None
        np.testing.assert_allclose(fitted(cores), values, rtol=1e-5, atol=1e-8 * a)

    @given(noise=st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=20, deadline=None)
    def test_train_rmse_reflects_noise_level(self, noise):
        rng = np.random.default_rng(0)
        cores = np.arange(1, 13, dtype=float)
        base = 100.0 + 10.0 * cores
        values = base * (1.0 + noise * rng.standard_normal(cores.size))
        fitted = fit_kernel(get_kernel("Poly25"), cores, values)
        assert fitted is not None
        assert fitted.train_rmse <= (noise + 1e-9) * np.max(base) * 2.0 + 1e-6
