"""End-to-end checks of the paper's headline claims on the simulated substrate.

These are the qualitative results the reproduction must preserve:

1. ESTIMA correctly identifies whether (and roughly where) an application
   stops scaling, from measurements on one Opteron socket (Section 4.4).
2. Time extrapolation misses scalability collapses that are not visible in the
   measured execution times (kmeans / intruder, Section 2.4 and Figure 7).
3. Including software stalls improves predictions for STM applications
   (Section 5.3, Figure 13).
4. Stalled cycles per core correlate strongly with execution time (Table 5).
5. Desktop-to-server predictions for the production applications stay within
   reasonable error (Section 4.3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EstimaConfig, EstimaPredictor, TimeExtrapolation
from repro.machine import get_machine
from repro.runner import CrossMachineExperiment, Experiment
from repro.simulation import MachineSimulator
from repro.workloads import get_workload

OPTERON_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48]


@pytest.fixture(scope="module")
def opteron_experiment():
    return Experiment(machine=get_machine("opteron48"))


def _run(experiment, name):
    return experiment.run(
        get_workload(name), measurement_cores=12, target_cores=48, core_counts=OPTERON_COUNTS
    )


class TestScalabilityBehaviourClaims:
    """Claim 1: no behaviour mispredictions; knees are located correctly."""

    def test_intruder_collapse_predicted(self, opteron_experiment):
        result = _run(opteron_experiment, "intruder")
        assert result.scaling_behaviour_correct()
        assert not result.estima.predicts_scaling_beyond(36)
        # The predicted knee is in the right region (paper Figure 5(i)).
        assert 12 < result.estima.predicted_peak_cores() < 40

    def test_blackscholes_keeps_scaling(self, opteron_experiment):
        result = _run(opteron_experiment, "blackscholes")
        assert result.scaling_behaviour_correct()
        assert result.estima.predicted_peak_cores() >= 40
        assert result.estima_error.max_error_pct < 25.0

    def test_genome_prediction_is_accurate(self, opteron_experiment):
        result = _run(opteron_experiment, "genome")
        # Paper Table 4: genome stays below ~7% maximum error.  On the
        # simulated substrate the mean error stays low but individual high
        # core counts can drift further, so bound the mean tightly and the
        # maximum loosely.
        assert result.estima_error.mean_error_pct < 25.0
        assert result.estima_error.max_error_pct < 60.0
        assert result.scaling_behaviour_correct()


class TestEstimaVsTimeExtrapolation:
    """Claim 2: ESTIMA beats direct time extrapolation where trends are hidden."""

    @pytest.mark.parametrize("name", ["intruder", "kmeans"])
    def test_estima_beats_baseline_on_collapsing_workloads(self, opteron_experiment, name):
        result = _run(opteron_experiment, name)
        assert result.estima_error.max_error_pct < result.baseline_error.max_error_pct

    def test_baseline_predicts_continued_scaling_for_intruder(self, opteron_experiment):
        result = _run(opteron_experiment, "intruder")
        # The failure mode of Figure 1 / Section 2.4.
        assert result.baseline.predicted_peak_cores() >= 40
        assert result.estima.predicted_peak_cores() < 40


class TestSoftwareStallClaims:
    """Claim 3: software stalls improve accuracy for STM applications."""

    def test_software_stalls_do_not_hurt_and_usually_help(self):
        machine = get_machine("opteron48")
        sweep = MachineSimulator(machine).sweep(
            get_workload("intruder"), core_counts=OPTERON_COUNTS
        )
        measured = sweep.restrict_to(12)
        with_sw = EstimaPredictor(EstimaConfig(use_software_stalls=True)).predict(
            measured, target_cores=48
        )
        without_sw = EstimaPredictor(EstimaConfig(use_software_stalls=False)).predict(
            measured, target_cores=48
        )
        err_with = with_sw.evaluate(sweep).mean_error_pct
        err_without = without_sw.evaluate(sweep).mean_error_pct
        # Figure 13: large improvements for contended STM workloads; at minimum
        # the software stalls must not make predictions worse.
        assert err_with <= err_without + 5.0


class TestCorrelationClaim:
    """Claim 4: stalled cycles per core track execution time (Table 5)."""

    @pytest.mark.parametrize("name", ["intruder", "blackscholes", "genome", "streamcluster"])
    def test_high_correlation_on_full_machine(self, name):
        sweep = MachineSimulator(get_machine("opteron48")).sweep(
            get_workload(name), core_counts=OPTERON_COUNTS
        )
        spc = sweep.stalls_per_core()
        corr = float(np.corrcoef(spc, sweep.times)[0, 1])
        assert corr > 0.6  # Table 5 reports 0.62-1.00


class TestProductionApplicationClaims:
    """Claim 5: desktop-to-server predictions for memcached and SQLite."""

    def test_memcached_haswell_to_xeon20(self):
        experiment = CrossMachineExperiment(
            measurement_machine=get_machine("haswell_desktop"),
            target_machine=get_machine("xeon20"),
        )
        result = experiment.run(get_workload("memcached"), measurement_cores=3)
        # Paper: errors below 30%; we accept a looser bound plus the behaviour check.
        assert result.estima_error.max_error_pct < 60.0
        assert result.scaling_behaviour_correct(tolerance=0.15)

    def test_sqlite_haswell_to_xeon20(self):
        experiment = CrossMachineExperiment(
            measurement_machine=get_machine("haswell_desktop"),
            target_machine=get_machine("xeon20"),
        )
        result = experiment.run(get_workload("sqlite_tpcc"), measurement_cores=4)
        # Absolute errors are larger than the paper's 26% on this substrate
        # (the SQLite write lock blocks in the kernel, which hardware counters
        # cannot see); the qualitative behaviour — the server stops scaling
        # around the middle of the machine — must still be captured.
        assert result.estima_error.max_error_pct < 150.0
        assert result.scaling_behaviour_correct(tolerance=0.15)
        assert result.estima.predicted_peak_cores() < 16
