"""Tests for the machine simulator (the measurement substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.measurement import MeasurementSet
from repro.machine import get_machine
from repro.simulation import MachineSimulator
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def opteron_sim():
    return MachineSimulator(get_machine("opteron48"))


@pytest.fixture(scope="module")
def xeon_sim():
    return MachineSimulator(get_machine("xeon20"))


class TestSingleRun:
    def test_run_produces_vendor_counters(self, opteron_sim, xeon_sim):
        amd = opteron_sim.run(get_workload("genome"), threads=4)
        intel = xeon_sim.run(get_workload("genome"), threads=4)
        assert "dispatch_stall_reorder_buffer_full" in amd.hardware_stalls
        assert "resource_stalls_rob" in intel.hardware_stalls
        assert set(amd.hardware_stalls) != set(intel.hardware_stalls)

    def test_all_counters_non_negative_and_finite(self, opteron_sim):
        result = opteron_sim.run(get_workload("intruder"), threads=12)
        for group in (result.hardware_stalls, result.software_stalls, result.frontend_stalls):
            for value in group.values():
                assert np.isfinite(value) and value >= 0.0
        assert result.time > 0.0

    def test_determinism(self, opteron_sim):
        a = opteron_sim.run(get_workload("intruder"), threads=8)
        b = opteron_sim.run(get_workload("intruder"), threads=8)
        assert a.time == b.time
        assert a.hardware_stalls == b.hardware_stalls

    def test_software_stalls_only_for_reporting_workloads(self, opteron_sim):
        stm = opteron_sim.run(get_workload("intruder"), threads=8)
        plain = opteron_sim.run(get_workload("blackscholes"), threads=8)
        assert stm.software_stalls
        assert plain.software_stalls == {}

    def test_thread_bounds_enforced(self, opteron_sim):
        with pytest.raises(ValueError):
            opteron_sim.run(get_workload("genome"), threads=0)
        with pytest.raises(ValueError):
            opteron_sim.run(get_workload("genome"), threads=49)

    def test_to_measurement_conversion(self, opteron_sim):
        result = opteron_sim.run(get_workload("intruder"), threads=6)
        measurement = result.to_measurement()
        assert measurement.cores == 6
        assert measurement.time == result.time
        assert measurement.software_stalls == dict(result.software_stalls)
        hw_only = result.to_measurement(include_software=False)
        assert hw_only.software_stalls == {}

    def test_dataset_scale_increases_work(self, opteron_sim):
        small = opteron_sim.run(get_workload("genome"), threads=8, dataset_scale=1.0)
        big = opteron_sim.run(get_workload("genome"), threads=8, dataset_scale=2.0)
        assert big.time > small.time
        assert big.memory_footprint_mb > small.memory_footprint_mb

    def test_details_are_populated(self, opteron_sim):
        result = opteron_sim.run(get_workload("intruder"), threads=24)
        details = result.details
        assert details.cycles_per_op > details.useful_cycles_per_op
        assert 0.0 <= details.cache_miss_fraction <= 1.0
        assert 0.0 <= details.stm_abort_probability <= 1.0
        assert details.sockets_used == 2

    def test_zero_noise_gives_smooth_model_output(self):
        sim = MachineSimulator(get_machine("opteron48"), noise=0.0)
        times = [sim.run(get_workload("blackscholes"), threads=n).time for n in (1, 2, 4, 8)]
        # With no jitter, an embarrassingly parallel workload halves its time
        # every doubling, almost exactly.
        assert times[0] / times[1] == pytest.approx(2.0, rel=0.05)
        assert times[1] / times[2] == pytest.approx(2.0, rel=0.05)


class TestScalabilitySignatures:
    """The qualitative behaviours the paper reports for its workloads."""

    def _best_core_count(self, sim, name, counts=(1, 2, 4, 8, 12, 16, 24, 32, 40, 48)):
        sweep = sim.sweep(get_workload(name), core_counts=list(counts))
        return int(sweep.cores[int(np.argmin(sweep.times))]), sweep

    def test_blackscholes_scales_to_the_full_machine(self, opteron_sim):
        best, sweep = self._best_core_count(opteron_sim, "blackscholes")
        assert best >= 40
        assert sweep.times[0] / sweep.times[-1] > 20.0  # near-linear speedup

    def test_raytrace_scales_well(self, opteron_sim):
        best, _ = self._best_core_count(opteron_sim, "raytrace")
        assert best >= 40

    def test_intruder_stops_scaling_mid_machine(self, opteron_sim):
        best, sweep = self._best_core_count(opteron_sim, "intruder")
        assert 12 < best < 40
        # and it actually slows down at the full machine
        assert sweep.time_at(48) > float(np.min(sweep.times)) * 1.1

    def test_yada_stops_scaling_mid_machine(self, opteron_sim):
        best, _ = self._best_core_count(opteron_sim, "yada")
        assert 12 < best < 40

    def test_kmeans_stops_scaling(self, opteron_sim):
        best, _ = self._best_core_count(opteron_sim, "kmeans")
        assert best < 40

    def test_sqlite_stops_scaling_early(self, xeon_sim):
        best, _ = self._best_core_count(
            xeon_sim, "sqlite_tpcc", counts=(1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
        )
        assert best <= 16

    def test_memcached_stops_scaling(self, xeon_sim):
        best, _ = self._best_core_count(
            xeon_sim, "memcached", counts=(1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
        )
        assert best <= 18

    def test_optimized_streamcluster_beats_original_at_scale(self, opteron_sim):
        original = opteron_sim.sweep(get_workload("streamcluster"), core_counts=[48])
        optimized = opteron_sim.sweep(get_workload("streamcluster_spinlock"), core_counts=[48])
        assert optimized.times[0] < original.times[0]

    def test_optimized_intruder_beats_original_at_scale(self, opteron_sim):
        original = opteron_sim.sweep(get_workload("intruder"), core_counts=[48])
        optimized = opteron_sim.sweep(get_workload("intruder_batch4"), core_counts=[48])
        assert optimized.times[0] < original.times[0]

    def test_stm_aborted_cycles_grow_steeply_for_intruder(self, opteron_sim):
        sweep = opteron_sim.sweep(get_workload("intruder"), core_counts=[2, 12, 48])
        aborted = sweep.category_series("stm_aborted_tx_cycles")
        assert aborted[2] > 5.0 * aborted[1] > 0.0


class TestSweep:
    def test_sweep_returns_sorted_measurement_set(self, opteron_sim):
        sweep = opteron_sim.sweep(get_workload("genome"), core_counts=[8, 1, 4])
        assert isinstance(sweep, MeasurementSet)
        assert list(sweep.cores) == [1, 4, 8]
        assert sweep.workload == "genome"
        assert sweep.machine == "opteron48"
        assert sweep.frequency_ghz == pytest.approx(2.1)

    def test_sweep_without_software(self, opteron_sim):
        sweep = opteron_sim.sweep(
            get_workload("intruder"), core_counts=[1, 4], include_software=False
        )
        assert sweep.category_names(software=True) == sweep.category_names(software=False)

    def test_default_core_counts_cover_the_machine(self):
        sim = MachineSimulator(get_machine("haswell_desktop"))
        sweep = sim.sweep(get_workload("memcached"))
        assert sweep.max_cores == 8
