#!/usr/bin/env python3
"""Capacity planning: will memcached / SQLite benefit from a bigger server?

Reproduces the Section 4.3 scenario: both production applications are profiled
on a 4-core desktop (Haswell, 3.4 GHz) and ESTIMA predicts how they will
behave on a 20-core dual-socket Xeon before the server is ever bought.
Execution times are rescaled by the clock-frequency ratio, exactly as the
paper does.

The deployment question the prediction answers: at how many cores does the
application stop improving, and is the bigger machine worth it?

Run with ``python examples/capacity_planning.py``.
"""

from __future__ import annotations

from repro import get_machine, get_workload
from repro.runner import CrossMachineExperiment


def plan(workload_name: str, measurement_cores: int) -> None:
    desktop = get_machine("haswell_desktop")
    server = get_machine("xeon20")
    experiment = CrossMachineExperiment(measurement_machine=desktop, target_machine=server)
    result = experiment.run(get_workload(workload_name), measurement_cores=measurement_cores)

    prediction = result.estima
    print(f"=== {workload_name} ===")
    print(f"measured on {desktop.name} ({measurement_cores} hardware threads)")
    print(f"predicted for {server.name} ({server.total_threads} cores)\n")
    print(f"{'cores':>6} {'predicted (s)':>14} {'measured (s)':>14}")
    for cores in (2, 4, 8, 12, 16, 20):
        measured = result.ground_truth.time_at(cores)
        print(f"{cores:>6d} {prediction.predicted_time_at(cores):>14.2f} {measured:>14.2f}")

    peak = prediction.predicted_peak_cores()
    print(f"\nESTIMA says {workload_name} stops improving at about {peak} cores.")
    print(f"Prediction error vs the server measurements: max {result.estima_error.max_error_pct:.1f}%, "
          f"mean {result.estima_error.mean_error_pct:.1f}%")
    if peak < server.total_threads * 0.8:
        print("=> a machine this large is NOT fully utilised by this configuration.\n")
    else:
        print("=> the application can use the whole machine.\n")


def main() -> None:
    # The paper measures memcached on 3 hardware threads (clients take the
    # rest of the desktop) and SQLite on 4 cores.
    plan("memcached", measurement_cores=3)
    plan("sqlite_tpcc", measurement_cores=4)


if __name__ == "__main__":
    main()
