#!/usr/bin/env python3
"""Bottleneck hunting: find *future* scalability bottlenecks before they bite.

Reproduces the Section 4.6 workflow on streamcluster and intruder:

1. collect hardware + software stalls on one Opteron socket (12 cores);
2. extrapolate to 48 cores and look at the dominant stall categories;
3. map them to the responsible code construct (barriers/mutexes for
   streamcluster, the contended packet queue transactions for intruder);
4. apply the fix (test-and-set spinlocks; coarser decode batching) and
   re-measure — the paper improves the two applications by up to 74% and 70%.

Run with ``python examples/bottleneck_hunting.py``.
"""

from __future__ import annotations

from repro import EstimaPredictor, MachineSimulator, get_machine, get_workload
from repro.analysis import BottleneckReport, optimization_improvement

CORE_COUNTS = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48]
FIXES = {
    "streamcluster": ("streamcluster_spinlock", "replace pthread mutex/trylock barriers with test-and-set spinlocks"),
    "intruder": ("intruder_batch4", "decode four packets per transaction to decongest the shared queue"),
}


def hunt(workload_name: str) -> None:
    machine = get_machine("opteron48")
    simulator = MachineSimulator(machine)
    workload = get_workload(workload_name)

    ground_truth = simulator.sweep(workload, core_counts=CORE_COUNTS)
    prediction = EstimaPredictor().predict(ground_truth.restrict_to(12), target_cores=48)

    print(f"=== {workload_name} ===")
    report = BottleneckReport.from_prediction(prediction)
    print(report.format_report(top=3))

    fixed_name, fix_description = FIXES[workload_name]
    print(f"\nsuggested fix: {fix_description}")
    optimized = simulator.sweep(get_workload(fixed_name), core_counts=CORE_COUNTS)
    improvements = optimization_improvement(ground_truth, optimized)
    best_cores = max(improvements, key=improvements.get)
    print(
        f"after the fix: up to {improvements[best_cores]:.0f}% faster "
        f"(at {best_cores} cores); at 48 cores {improvements[48]:.0f}% faster\n"
    )


def main() -> None:
    for name in FIXES:
        hunt(name)


if __name__ == "__main__":
    main()
