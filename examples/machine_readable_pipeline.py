#!/usr/bin/env python3
"""Consume ESTIMA predictions programmatically via ``estima predict --json``.

Downstream tooling (capacity planners, dashboards, CI gates) should not scrape
text tables.  ``estima predict --json`` emits one JSON document with the full
prediction — times, stalls per core, chosen kernels, bottleneck ranking — and
this example shows the intended pipeline: invoke the CLI, parse the document,
and act on it (here: a toy provisioning rule that picks the cheapest core
count within 10% of peak predicted performance).

Run with ``python examples/machine_readable_pipeline.py``.
"""

from __future__ import annotations

import contextlib
import io
import json

from repro.cli import main as estima


def fetch_prediction(workload: str, machine: str, measure: int, target: int) -> dict:
    """Run the CLI exactly as a subprocess would and parse its JSON output."""
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = estima(
            [
                "predict",
                "--workload", workload,
                "--machine", machine,
                "--measure-cores", str(measure),
                "--target-cores", str(target),
                "--json",
            ]
        )
    if code != 0:
        raise RuntimeError(f"estima predict failed with exit code {code}")
    return json.loads(stdout.getvalue())


def cheapest_good_core_count(payload: dict, *, slack: float = 0.10) -> int:
    """Smallest core count whose predicted time is within ``slack`` of the best."""
    times = payload["predicted_times_s"]
    best = min(times)
    for cores, time in zip(payload["prediction_cores"], times):
        if time <= best * (1.0 + slack):
            return cores
    return payload["predicted_peak_cores"]


def main() -> None:
    payload = fetch_prediction("intruder", "opteron48", measure=12, target=48)

    print(f"workload            : {payload['workload']} on {payload['machine']}")
    print(f"measured cores      : {payload['measured_cores']}")
    print(f"predicted peak      : {payload['predicted_peak_cores']} cores")
    print(f"scaling factor      : {payload['scaling_factor']['kernel']} "
          f"(corr {payload['scaling_factor']['correlation']:.3f})")
    top = payload["dominant_categories"][0]
    print(f"dominant bottleneck : {top['category']} ({top['fraction']:.0%} of stalls)")

    recommended = cheapest_good_core_count(payload)
    time_at = payload["predicted_times_s"][recommended - 1]
    print(f"\nprovisioning rule   : run on {recommended} cores "
          f"(predicted {time_at:.2f}s, within 10% of peak)")


if __name__ == "__main__":
    main()
