#!/usr/bin/env python3
"""Software-stall plugins: feed runtime-reported stalls into ESTIMA.

The paper's plugin mechanism (Section 4.1) lets users point ESTIMA at any
textual report — SwissTM statistics, a pthread-wrapper dump, application logs —
with a regular expression and an aggregation function.  This example closes
the loop end to end:

1. simulate genome on one Xeon20 socket and render, for every run, the
   pthread-wrapper/STM report the runtime would have printed;
2. configure ESTIMA with plugins that parse those reports;
3. compare the hardware-only prediction against the plugin-augmented one
   (the Figure-13 experiment for a single workload).

Run with ``python examples/software_stall_plugins.py``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import EstimaConfig, EstimaPredictor, MachineSimulator, PluginSet, get_machine, get_workload
from repro.sync import SyncCost, default_plugins_config, render_report

CORE_COUNTS = list(range(1, 21))


def main() -> None:
    machine = get_machine("xeon20")
    workload = get_workload("genome")
    simulator = MachineSimulator(machine)

    # Ground truth on the full machine; measurements from one socket, with the
    # software stalls *stripped* — they will come back in via the plugins.
    ground_truth = simulator.sweep(workload, core_counts=CORE_COUNTS)
    hardware_only = simulator.sweep(
        workload, core_counts=[c for c in CORE_COUNTS if c <= 10], include_software=False
    )

    # Render the per-run runtime reports (what SwissTM / the wrapper prints).
    reports: dict[int, str] = {}
    for cores in hardware_only.cores:
        run = simulator.run(workload, threads=int(cores))
        per_op = {
            name: value / workload.profile().total_ops
            for name, value in run.software_stalls.items()
        }
        reports[int(cores)] = render_report(
            int(cores), SyncCost(software_stall_cycles=per_op), workload.profile().total_ops
        )

    # Write the plugin configuration file and load it, as a user would.
    with tempfile.TemporaryDirectory() as tmp:
        config_path = Path(tmp) / "plugins.json"
        config_path.write_text(json.dumps({"plugins": default_plugins_config()}, indent=2))
        plugins = PluginSet.from_config(config_path)
        augmented = plugins.augment(hardware_only, reports)

    predictor_hw = EstimaPredictor(EstimaConfig(use_software_stalls=False))
    predictor_sw = EstimaPredictor(EstimaConfig(use_software_stalls=True))
    pred_hw = predictor_hw.predict(hardware_only, target_cores=20)
    pred_sw = predictor_sw.predict(augmented, target_cores=20)

    err_hw = pred_hw.evaluate(ground_truth)
    err_sw = pred_sw.evaluate(ground_truth)
    print(f"plugin categories parsed: {sorted(set(augmented.category_names()) - set(hardware_only.category_names()))}")
    print(f"hardware-only prediction : mean error {err_hw.mean_error_pct:.1f}%")
    print(f"with plugin software stalls: mean error {err_sw.mean_error_pct:.1f}%")
    print("(the paper's Figure 13 reports an average 57% accuracy improvement from software stalls)")


if __name__ == "__main__":
    main()
