#!/usr/bin/env python3
"""Quickstart: predict the scalability of one application from a small machine.

The flow mirrors Figure 3 of the paper:

1. collect stalled-cycle counters and execution times for the application at
   low core counts (here: the ``intruder`` NIDS benchmark on one socket — 12
   cores — of the 48-core Opteron, produced by the simulation substrate);
2. let ESTIMA extrapolate every stall category and translate the combined
   stalls per core into execution-time predictions for the full machine;
3. compare against the ground truth and against the naive time-extrapolation
   baseline.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    EstimaPredictor,
    MachineSimulator,
    TimeExtrapolation,
    get_machine,
    get_workload,
)


def main() -> None:
    machine = get_machine("opteron48")
    workload = get_workload("intruder")
    print(f"Machine : {machine.describe()}")
    print(f"Workload: {workload.name} — {workload.description}\n")

    # Step 1: "profile" the application.  On real hardware this is a perf +
    # instrumented-runtime run per core count; here the simulator stands in.
    simulator = MachineSimulator(machine)
    ground_truth = simulator.sweep(workload, core_counts=[1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48])
    measurements = ground_truth.restrict_to(12)
    print(f"Collected {len(measurements)} measurement points (1..12 cores).")
    print(f"Stall categories: {', '.join(measurements.category_names())}\n")

    # Step 2: extrapolate to the full 48-core machine.
    prediction = EstimaPredictor().predict(measurements, target_cores=48)
    print(prediction.summary())

    # Step 3: evaluate against ground truth and the baseline.
    baseline = TimeExtrapolation().predict(measurements, target_cores=48)
    print(f"\n{'cores':>6} {'measured':>10} {'ESTIMA':>10} {'time-extrap':>12}")
    for cores in (16, 20, 24, 32, 40, 48):
        print(
            f"{cores:>6d} {ground_truth.time_at(cores):>10.2f} "
            f"{prediction.predicted_time_at(cores):>10.2f} "
            f"{baseline.predicted_time_at(cores):>12.2f}"
        )

    estima_error = prediction.evaluate(ground_truth)
    baseline_error = baseline.evaluate(ground_truth)
    actual_peak = int(ground_truth.cores[int(np.argmin(ground_truth.times))])
    print(f"\nActual best core count   : {actual_peak}")
    print(f"ESTIMA predicted peak    : {prediction.predicted_peak_cores()}")
    print(f"Baseline predicted peak  : {baseline.predicted_peak_cores()}")
    print(f"ESTIMA max error         : {estima_error.max_error_pct:.1f}%")
    print(f"Time-extrapolation error : {baseline_error.max_error_pct:.1f}%")


if __name__ == "__main__":
    main()
